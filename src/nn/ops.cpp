#include "nn/ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace mga::nn {

using detail::TensorImpl;

namespace {

/// Build the result node of an op: allocates storage, wires parents, and
/// enables grad iff any parent needs it.
Tensor make_result(std::size_t rows, std::size_t cols,
                   std::initializer_list<Tensor> parents) {
  bool needs_grad = false;
  for (const auto& p : parents) needs_grad = needs_grad || p.requires_grad();
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data.assign(rows * cols, 0.0f);
  impl->requires_grad = needs_grad;
  if (needs_grad) {
    impl->grad.assign(rows * cols, 0.0f);
    for (const auto& p : parents) impl->parents.push_back(p.impl());
  }
  return Tensor(std::move(impl));
}

[[nodiscard]] bool same_shape(const Tensor& a, const Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols();
}

/// Register the backward closure on `out` (no-op for grad-free graphs).
void set_backward(Tensor& out, std::function<void()> fn) {
  if (out.requires_grad()) out.impl()->backward_fn = std::move(fn);
}

float* grad_ptr(const Tensor& t) {
  return t.requires_grad() ? t.impl()->grad.data() : nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// elementwise

Tensor add(const Tensor& a, const Tensor& b) {
  MGA_CHECK_MSG(same_shape(a, b), "add: shape mismatch");
  Tensor out = make_result(a.rows(), a.cols(), {a, b});
  const auto n = a.numel();
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* po = out.data().data();
  for (std::size_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];
  set_backward(out, [ai = a.impl(), bi = b.impl(), oi = out.impl().get(), n] {
    for (std::size_t i = 0; i < n; ++i) {
      const float g = oi->grad[i];
      if (ai->requires_grad) ai->grad[i] += g;
      if (bi->requires_grad) bi->grad[i] += g;
    }
  });
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  MGA_CHECK_MSG(same_shape(a, b), "sub: shape mismatch");
  Tensor out = make_result(a.rows(), a.cols(), {a, b});
  const auto n = a.numel();
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] - b.data()[i];
  set_backward(out, [ai = a.impl(), bi = b.impl(), oi = out.impl().get(), n] {
    for (std::size_t i = 0; i < n; ++i) {
      const float g = oi->grad[i];
      if (ai->requires_grad) ai->grad[i] += g;
      if (bi->requires_grad) bi->grad[i] -= g;
    }
  });
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  MGA_CHECK_MSG(same_shape(a, b), "mul: shape mismatch");
  Tensor out = make_result(a.rows(), a.cols(), {a, b});
  const auto n = a.numel();
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] * b.data()[i];
  set_backward(out, [ai = a.impl(), bi = b.impl(), oi = out.impl().get(), n] {
    for (std::size_t i = 0; i < n; ++i) {
      const float g = oi->grad[i];
      if (ai->requires_grad) ai->grad[i] += g * bi->data[i];
      if (bi->requires_grad) bi->grad[i] += g * ai->data[i];
    }
  });
  return out;
}

Tensor div(const Tensor& a, const Tensor& b) {
  MGA_CHECK_MSG(same_shape(a, b), "div: shape mismatch");
  Tensor out = make_result(a.rows(), a.cols(), {a, b});
  const auto n = a.numel();
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] / b.data()[i];
  set_backward(out, [ai = a.impl(), bi = b.impl(), oi = out.impl().get(), n] {
    for (std::size_t i = 0; i < n; ++i) {
      const float g = oi->grad[i];
      const float bv = bi->data[i];
      if (ai->requires_grad) ai->grad[i] += g / bv;
      if (bi->requires_grad) bi->grad[i] -= g * ai->data[i] / (bv * bv);
    }
  });
  return out;
}

Tensor scale(const Tensor& a, float factor) {
  Tensor out = make_result(a.rows(), a.cols(), {a});
  const auto n = a.numel();
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] * factor;
  set_backward(out, [ai = a.impl(), oi = out.impl().get(), n, factor] {
    if (!ai->requires_grad) return;
    for (std::size_t i = 0; i < n; ++i) ai->grad[i] += oi->grad[i] * factor;
  });
  return out;
}

Tensor neg(const Tensor& a) { return scale(a, -1.0f); }

Tensor exp_op(const Tensor& a) {
  Tensor out = make_result(a.rows(), a.cols(), {a});
  const auto n = a.numel();
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = std::exp(a.data()[i]);
  set_backward(out, [ai = a.impl(), oi = out.impl().get(), n] {
    if (!ai->requires_grad) return;
    for (std::size_t i = 0; i < n; ++i) ai->grad[i] += oi->grad[i] * oi->data[i];
  });
  return out;
}

Tensor log_op(const Tensor& a) {
  Tensor out = make_result(a.rows(), a.cols(), {a});
  const auto n = a.numel();
  for (std::size_t i = 0; i < n; ++i) {
    MGA_CHECK_MSG(a.data()[i] > 0.0f, "log_op: non-positive input");
    out.data()[i] = std::log(a.data()[i]);
  }
  set_backward(out, [ai = a.impl(), oi = out.impl().get(), n] {
    if (!ai->requires_grad) return;
    for (std::size_t i = 0; i < n; ++i) ai->grad[i] += oi->grad[i] / ai->data[i];
  });
  return out;
}

Tensor relu(const Tensor& a) {
  Tensor out = make_result(a.rows(), a.cols(), {a});
  const auto n = a.numel();
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = std::max(0.0f, a.data()[i]);
  set_backward(out, [ai = a.impl(), oi = out.impl().get(), n] {
    if (!ai->requires_grad) return;
    for (std::size_t i = 0; i < n; ++i)
      if (ai->data[i] > 0.0f) ai->grad[i] += oi->grad[i];
  });
  return out;
}

Tensor leaky_relu(const Tensor& a, float negative_slope) {
  Tensor out = make_result(a.rows(), a.cols(), {a});
  const auto n = a.numel();
  for (std::size_t i = 0; i < n; ++i) {
    const float x = a.data()[i];
    out.data()[i] = x > 0.0f ? x : negative_slope * x;
  }
  set_backward(out, [ai = a.impl(), oi = out.impl().get(), n, negative_slope] {
    if (!ai->requires_grad) return;
    for (std::size_t i = 0; i < n; ++i)
      ai->grad[i] += oi->grad[i] * (ai->data[i] > 0.0f ? 1.0f : negative_slope);
  });
  return out;
}

Tensor sigmoid(const Tensor& a) {
  Tensor out = make_result(a.rows(), a.cols(), {a});
  const auto n = a.numel();
  for (std::size_t i = 0; i < n; ++i)
    out.data()[i] = 1.0f / (1.0f + std::exp(-a.data()[i]));
  set_backward(out, [ai = a.impl(), oi = out.impl().get(), n] {
    if (!ai->requires_grad) return;
    for (std::size_t i = 0; i < n; ++i) {
      const float s = oi->data[i];
      ai->grad[i] += oi->grad[i] * s * (1.0f - s);
    }
  });
  return out;
}

Tensor tanh_op(const Tensor& a) {
  Tensor out = make_result(a.rows(), a.cols(), {a});
  const auto n = a.numel();
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = std::tanh(a.data()[i]);
  set_backward(out, [ai = a.impl(), oi = out.impl().get(), n] {
    if (!ai->requires_grad) return;
    for (std::size_t i = 0; i < n; ++i) {
      const float t = oi->data[i];
      ai->grad[i] += oi->grad[i] * (1.0f - t * t);
    }
  });
  return out;
}

// ---------------------------------------------------------------------------
// linear algebra

Tensor matmul(const Tensor& a, const Tensor& b) {
  MGA_CHECK_MSG(a.cols() == b.rows(), "matmul: inner dimensions differ");
  const std::size_t n = a.rows();
  const std::size_t k = a.cols();
  const std::size_t m = b.cols();
  Tensor out = make_result(n, m, {a, b});
  // ikj loop order keeps the inner loop unit-stride over both B and the
  // output — the standard cache-friendly ordering for row-major data.
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* po = out.data().data();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * m;
      float* orow = po + i * m;
      for (std::size_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
  set_backward(out, [ai = a.impl(), bi = b.impl(), oi = out.impl().get(), n, k, m] {
    // dA = dOut * B^T ; dB = A^T * dOut
    if (ai->requires_grad) {
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < m; ++j) {
          const float g = oi->grad[i * m + j];
          if (g == 0.0f) continue;
          for (std::size_t kk = 0; kk < k; ++kk)
            ai->grad[i * k + kk] += g * bi->data[kk * m + j];
        }
    }
    if (bi->requires_grad) {
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t kk = 0; kk < k; ++kk) {
          const float av = ai->data[i * k + kk];
          if (av == 0.0f) continue;
          for (std::size_t j = 0; j < m; ++j)
            bi->grad[kk * m + j] += av * oi->grad[i * m + j];
        }
    }
  });
  return out;
}

Tensor add_bias(const Tensor& x, const Tensor& bias) {
  MGA_CHECK_MSG(bias.rows() == 1 && bias.cols() == x.cols(),
                "add_bias: bias must be [1, cols(x)]");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  Tensor out = make_result(n, d, {x, bias});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j)
      out.data()[i * d + j] = x.data()[i * d + j] + bias.data()[j];
  set_backward(out, [xi = x.impl(), bi = bias.impl(), oi = out.impl().get(), n, d] {
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < d; ++j) {
        const float g = oi->grad[i * d + j];
        if (xi->requires_grad) xi->grad[i * d + j] += g;
        if (bi->requires_grad) bi->grad[j] += g;
      }
  });
  return out;
}

// ---------------------------------------------------------------------------
// shape

Tensor concat_cols(const Tensor& a, const Tensor& b) {
  MGA_CHECK_MSG(a.rows() == b.rows(), "concat_cols: row count mismatch");
  const std::size_t n = a.rows();
  const std::size_t da = a.cols();
  const std::size_t db = b.cols();
  Tensor out = make_result(n, da + db, {a, b});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < da; ++j) out.data()[i * (da + db) + j] = a.data()[i * da + j];
    for (std::size_t j = 0; j < db; ++j)
      out.data()[i * (da + db) + da + j] = b.data()[i * db + j];
  }
  set_backward(out, [ai = a.impl(), bi = b.impl(), oi = out.impl().get(), n, da, db] {
    for (std::size_t i = 0; i < n; ++i) {
      if (ai->requires_grad)
        for (std::size_t j = 0; j < da; ++j)
          ai->grad[i * da + j] += oi->grad[i * (da + db) + j];
      if (bi->requires_grad)
        for (std::size_t j = 0; j < db; ++j)
          bi->grad[i * db + j] += oi->grad[i * (da + db) + da + j];
    }
  });
  return out;
}

Tensor concat_rows(const Tensor& a, const Tensor& b) {
  MGA_CHECK_MSG(a.cols() == b.cols(), "concat_rows: column count mismatch");
  const std::size_t d = a.cols();
  const std::size_t na = a.rows();
  const std::size_t nb = b.rows();
  Tensor out = make_result(na + nb, d, {a, b});
  std::copy(a.data().begin(), a.data().end(), out.data().begin());
  std::copy(b.data().begin(), b.data().end(),
            out.data().begin() + static_cast<std::ptrdiff_t>(na * d));
  set_backward(out, [ai = a.impl(), bi = b.impl(), oi = out.impl().get(), na, nb, d] {
    if (ai->requires_grad)
      for (std::size_t i = 0; i < na * d; ++i) ai->grad[i] += oi->grad[i];
    if (bi->requires_grad)
      for (std::size_t i = 0; i < nb * d; ++i) bi->grad[i] += oi->grad[na * d + i];
  });
  return out;
}

Tensor row_repeat(const Tensor& x, std::size_t n) {
  MGA_CHECK_MSG(x.rows() == 1, "row_repeat: input must be a single row");
  MGA_CHECK(n > 0);
  const std::size_t d = x.cols();
  Tensor out = make_result(n, d, {x});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j) out.data()[i * d + j] = x.data()[j];
  set_backward(out, [xi = x.impl(), oi = out.impl().get(), n, d] {
    if (!xi->requires_grad) return;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < d; ++j) xi->grad[j] += oi->grad[i * d + j];
  });
  return out;
}

// ---------------------------------------------------------------------------
// gather / scatter

Tensor gather_rows(const Tensor& x, const std::vector<int>& index) {
  MGA_CHECK(!index.empty());
  const std::size_t d = x.cols();
  for (const int i : index)
    MGA_CHECK_MSG(i >= 0 && static_cast<std::size_t>(i) < x.rows(),
                  "gather_rows: index out of range");
  Tensor out = make_result(index.size(), d, {x});
  for (std::size_t r = 0; r < index.size(); ++r)
    for (std::size_t j = 0; j < d; ++j)
      out.data()[r * d + j] = x.data()[static_cast<std::size_t>(index[r]) * d + j];
  set_backward(out, [xi = x.impl(), oi = out.impl().get(), index, d] {
    if (!xi->requires_grad) return;
    for (std::size_t r = 0; r < index.size(); ++r)
      for (std::size_t j = 0; j < d; ++j)
        xi->grad[static_cast<std::size_t>(index[r]) * d + j] += oi->grad[r * d + j];
  });
  return out;
}

Tensor scatter_sum(const Tensor& x, const std::vector<int>& index, std::size_t num_rows) {
  MGA_CHECK_MSG(index.size() == x.rows(), "scatter_sum: one index per input row");
  const std::size_t d = x.cols();
  for (const int i : index)
    MGA_CHECK_MSG(i >= 0 && static_cast<std::size_t>(i) < num_rows,
                  "scatter_sum: index out of range");
  Tensor out = make_result(num_rows, d, {x});
  for (std::size_t r = 0; r < index.size(); ++r)
    for (std::size_t j = 0; j < d; ++j)
      out.data()[static_cast<std::size_t>(index[r]) * d + j] += x.data()[r * d + j];
  set_backward(out, [xi = x.impl(), oi = out.impl().get(), index, d] {
    if (!xi->requires_grad) return;
    for (std::size_t r = 0; r < index.size(); ++r)
      for (std::size_t j = 0; j < d; ++j)
        xi->grad[r * d + j] += oi->grad[static_cast<std::size_t>(index[r]) * d + j];
  });
  return out;
}

Tensor scatter_mean(const Tensor& x, const std::vector<int>& index, std::size_t num_rows) {
  MGA_CHECK_MSG(index.size() == x.rows(), "scatter_mean: one index per input row");
  const std::size_t d = x.cols();
  std::vector<float> inv_count(num_rows, 0.0f);
  for (const int i : index) {
    MGA_CHECK_MSG(i >= 0 && static_cast<std::size_t>(i) < num_rows,
                  "scatter_mean: index out of range");
    inv_count[static_cast<std::size_t>(i)] += 1.0f;
  }
  for (auto& c : inv_count) c = c > 0.0f ? 1.0f / c : 0.0f;

  Tensor out = make_result(num_rows, d, {x});
  for (std::size_t r = 0; r < index.size(); ++r) {
    const auto dst = static_cast<std::size_t>(index[r]);
    for (std::size_t j = 0; j < d; ++j)
      out.data()[dst * d + j] += x.data()[r * d + j] * inv_count[dst];
  }
  set_backward(out, [xi = x.impl(), oi = out.impl().get(), index, d, inv_count] {
    if (!xi->requires_grad) return;
    for (std::size_t r = 0; r < index.size(); ++r) {
      const auto dst = static_cast<std::size_t>(index[r]);
      for (std::size_t j = 0; j < d; ++j)
        xi->grad[r * d + j] += oi->grad[dst * d + j] * inv_count[dst];
    }
  });
  return out;
}

// ---------------------------------------------------------------------------
// reductions

Tensor sum_all(const Tensor& a) {
  Tensor out = make_result(1, 1, {a});
  double acc = 0.0;
  for (const float x : a.data()) acc += x;
  out.data()[0] = static_cast<float>(acc);
  set_backward(out, [ai = a.impl(), oi = out.impl().get()] {
    if (!ai->requires_grad) return;
    const float g = oi->grad[0];
    for (auto& gi : ai->grad) gi += g;
  });
  return out;
}

Tensor mean_all(const Tensor& a) {
  return scale(sum_all(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor sum_rows(const Tensor& a) {
  const std::size_t n = a.rows();
  const std::size_t d = a.cols();
  Tensor out = make_result(1, d, {a});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j) out.data()[j] += a.data()[i * d + j];
  set_backward(out, [ai = a.impl(), oi = out.impl().get(), n, d] {
    if (!ai->requires_grad) return;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < d; ++j) ai->grad[i * d + j] += oi->grad[j];
  });
  return out;
}

Tensor mean_rows(const Tensor& a) {
  return scale(sum_rows(a), 1.0f / static_cast<float>(a.rows()));
}

// ---------------------------------------------------------------------------
// regularization

Tensor dropout(const Tensor& a, float p, util::Rng& rng, bool training) {
  MGA_CHECK(p >= 0.0f && p < 1.0f);
  if (!training || p == 0.0f) return a;
  const auto n = a.numel();
  std::vector<float> mask(n);
  const float keep_scale = 1.0f / (1.0f - p);
  for (auto& m : mask) m = rng.bernoulli(p) ? 0.0f : keep_scale;
  Tensor out = make_result(a.rows(), a.cols(), {a});
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] * mask[i];
  set_backward(out, [ai = a.impl(), oi = out.impl().get(), mask = std::move(mask), n] {
    if (!ai->requires_grad) return;
    for (std::size_t i = 0; i < n; ++i) ai->grad[i] += oi->grad[i] * mask[i];
  });
  return out;
}

// ---------------------------------------------------------------------------
// losses

Tensor softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels) {
  const std::size_t n = logits.rows();
  const std::size_t c = logits.cols();
  MGA_CHECK_MSG(labels.size() == n, "softmax_cross_entropy: one label per row");
  for (const int y : labels)
    MGA_CHECK_MSG(y >= 0 && static_cast<std::size_t>(y) < c, "label out of range");

  // Forward computes the loss directly (log-sum-exp stabilized); backward
  // uses the classic (softmax - onehot)/n shortcut, so we cache the probs.
  std::vector<float> probs(n * c);
  double loss_acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.data().data() + i * c;
    float max_logit = row[0];
    for (std::size_t j = 1; j < c; ++j) max_logit = std::max(max_logit, row[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < c; ++j) denom += std::exp(static_cast<double>(row[j] - max_logit));
    const double log_denom = std::log(denom);
    for (std::size_t j = 0; j < c; ++j)
      probs[i * c + j] =
          static_cast<float>(std::exp(static_cast<double>(row[j] - max_logit)) / denom);
    const auto y = static_cast<std::size_t>(labels[i]);
    loss_acc += log_denom - static_cast<double>(row[y] - max_logit);
  }

  Tensor out = make_result(1, 1, {logits});
  out.data()[0] = static_cast<float>(loss_acc / static_cast<double>(n));
  set_backward(out, [li = logits.impl(), oi = out.impl().get(), probs = std::move(probs),
                     labels, n, c] {
    if (!li->requires_grad) return;
    const float g = oi->grad[0] / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto y = static_cast<std::size_t>(labels[i]);
      for (std::size_t j = 0; j < c; ++j) {
        const float delta = (j == y) ? 1.0f : 0.0f;
        li->grad[i * c + j] += g * (probs[i * c + j] - delta);
      }
    }
  });
  return out;
}

Tensor mse_loss(const Tensor& prediction, const Tensor& target) {
  MGA_CHECK_MSG(same_shape(prediction, target), "mse_loss: shape mismatch");
  const auto n = prediction.numel();
  Tensor out = make_result(1, 1, {prediction});
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double diff = static_cast<double>(prediction.data()[i]) - target.data()[i];
    acc += diff * diff;
  }
  out.data()[0] = static_cast<float>(acc / static_cast<double>(n));
  set_backward(out, [pi = prediction.impl(), ti = target.impl(), oi = out.impl().get(), n] {
    if (!pi->requires_grad) return;
    const float g = oi->grad[0] * 2.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i)
      pi->grad[i] += g * (pi->data[i] - ti->data[i]);
  });
  return out;
}

// ---------------------------------------------------------------------------
// eval helpers

std::vector<std::vector<double>> softmax_eval(const Tensor& logits) {
  const std::size_t n = logits.rows();
  const std::size_t c = logits.cols();
  std::vector<std::vector<double>> result(n, std::vector<double>(c, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.data().data() + i * c;
    double max_logit = row[0];
    for (std::size_t j = 1; j < c; ++j) max_logit = std::max<double>(max_logit, row[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      result[i][j] = std::exp(static_cast<double>(row[j]) - max_logit);
      denom += result[i][j];
    }
    for (std::size_t j = 0; j < c; ++j) result[i][j] /= denom;
  }
  return result;
}

std::vector<int> argmax_rows(const Tensor& logits) {
  const std::size_t n = logits.rows();
  const std::size_t c = logits.cols();
  std::vector<int> result(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.data().data() + i * c;
    std::size_t best = 0;
    for (std::size_t j = 1; j < c; ++j)
      if (row[j] > row[best]) best = j;
    result[i] = static_cast<int>(best);
  }
  return result;
}

}  // namespace mga::nn
