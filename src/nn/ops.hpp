// Differentiable op vocabulary over nn::Tensor. Each function builds a tape
// node whose backward closure accumulates into the parents' gradients.
//
// Conventions:
//  * all tensors are [rows, cols] float matrices;
//  * index vectors (gather/scatter/labels) are plain std::vector<int> and are
//    not differentiated through;
//  * ops marked "eval" never touch the tape.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace mga::nn {

// --- elementwise ------------------------------------------------------------

[[nodiscard]] Tensor add(const Tensor& a, const Tensor& b);       // same shape
[[nodiscard]] Tensor sub(const Tensor& a, const Tensor& b);       // same shape
[[nodiscard]] Tensor mul(const Tensor& a, const Tensor& b);       // same shape
[[nodiscard]] Tensor div(const Tensor& a, const Tensor& b);       // same shape, b != 0
[[nodiscard]] Tensor scale(const Tensor& a, float factor);
[[nodiscard]] Tensor neg(const Tensor& a);
[[nodiscard]] Tensor exp_op(const Tensor& a);
[[nodiscard]] Tensor log_op(const Tensor& a);                     // a > 0
[[nodiscard]] Tensor relu(const Tensor& a);
[[nodiscard]] Tensor leaky_relu(const Tensor& a, float negative_slope = 0.2f);
[[nodiscard]] Tensor sigmoid(const Tensor& a);
[[nodiscard]] Tensor tanh_op(const Tensor& a);

// --- linear algebra ---------------------------------------------------------

/// [n,k] x [k,m] -> [n,m].
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// [n,d] + broadcast [1,d] bias -> [n,d].
[[nodiscard]] Tensor add_bias(const Tensor& x, const Tensor& bias);

// --- shape ------------------------------------------------------------------

/// Horizontal concat: [n,a] ++ [n,b] -> [n,a+b].
[[nodiscard]] Tensor concat_cols(const Tensor& a, const Tensor& b);

/// Vertical concat: [n,d] ++ [m,d] -> [n+m,d].
[[nodiscard]] Tensor concat_rows(const Tensor& a, const Tensor& b);

/// Repeat a [1,d] row n times -> [n,d] (broadcast for late fusion batches).
[[nodiscard]] Tensor row_repeat(const Tensor& x, std::size_t n);

// --- gather / scatter (graph message passing) --------------------------------

/// out[i,:] = x[index[i],:]; index values in [0, x.rows()).
[[nodiscard]] Tensor gather_rows(const Tensor& x, const std::vector<int>& index);

/// out[j,:] = sum over i with index[i]==j of x[i,:]; out has num_rows rows.
[[nodiscard]] Tensor scatter_sum(const Tensor& x, const std::vector<int>& index,
                                 std::size_t num_rows);

/// Like scatter_sum but divides each output row by its in-degree (rows with
/// no contributions stay zero). The "mean" aggregation of the paper's GNN.
[[nodiscard]] Tensor scatter_mean(const Tensor& x, const std::vector<int>& index,
                                  std::size_t num_rows);

// --- reductions ---------------------------------------------------------------

[[nodiscard]] Tensor sum_all(const Tensor& a);                    // -> [1,1]
[[nodiscard]] Tensor mean_all(const Tensor& a);                   // -> [1,1]
[[nodiscard]] Tensor mean_rows(const Tensor& a);                  // [n,d] -> [1,d]
[[nodiscard]] Tensor sum_rows(const Tensor& a);                   // [n,d] -> [1,d]

// --- regularization -----------------------------------------------------------

/// Inverted dropout; identity when !training or p == 0.
[[nodiscard]] Tensor dropout(const Tensor& a, float p, util::Rng& rng, bool training);

// --- losses -------------------------------------------------------------------

/// Mean softmax cross-entropy of [n,c] logits against n integer labels.
[[nodiscard]] Tensor softmax_cross_entropy(const Tensor& logits,
                                           const std::vector<int>& labels);

/// Mean squared error against a constant target (not differentiated).
[[nodiscard]] Tensor mse_loss(const Tensor& prediction, const Tensor& target);

// --- eval-only helpers ----------------------------------------------------------

/// Row-wise softmax probabilities (no tape).
[[nodiscard]] std::vector<std::vector<double>> softmax_eval(const Tensor& logits);

/// Argmax per row of logits (no tape).
[[nodiscard]] std::vector<int> argmax_rows(const Tensor& logits);

}  // namespace mga::nn
