// Trainable layers built on the op vocabulary. Layers own their parameter
// tensors and expose them via parameters() so optimizers can update them.
#pragma once

#include <vector>

#include "nn/ops.hpp"
#include "nn/tensor.hpp"
#include "runtime/graph.hpp"

namespace mga::nn {

/// Fully connected layer: y = x W + b.
class Linear {
 public:
  Linear(util::Rng& rng, std::size_t in_features, std::size_t out_features);

  [[nodiscard]] Tensor forward(const Tensor& x) const;

  /// Record this layer's forward into an op graph (runtime plan capture).
  /// The weights are captured as aliasing params: in-place updates (AdamW,
  /// fine_tune) are visible to a compiled plan without re-capture.
  [[nodiscard]] runtime::ValueId capture(runtime::GraphBuilder& g, runtime::ValueId x) const;

  [[nodiscard]] std::vector<Tensor> parameters() const { return {weight_, bias_}; }
  [[nodiscard]] std::size_t in_features() const noexcept { return weight_.rows(); }
  [[nodiscard]] std::size_t out_features() const noexcept { return weight_.cols(); }

 private:
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [1, out]
};

/// GRU cell used by the gated graph convolution (GGNN): given the aggregated
/// neighbour message m and the previous node state h, computes the gated
/// update h' = (1-z) * h + z * tanh(...). Operates on [n, dim] batches.
class GruCell {
 public:
  GruCell(util::Rng& rng, std::size_t input_dim, std::size_t hidden_dim);

  [[nodiscard]] Tensor forward(const Tensor& input, const Tensor& hidden) const;

  /// Record the gated update into an op graph (see Linear::capture).
  [[nodiscard]] runtime::ValueId capture(runtime::GraphBuilder& g, runtime::ValueId input,
                                         runtime::ValueId hidden) const;

  [[nodiscard]] std::vector<Tensor> parameters() const;
  [[nodiscard]] std::size_t hidden_dim() const noexcept { return w_update_.cols(); }

 private:
  // Update gate z, reset gate r, candidate state c.
  Tensor w_update_, u_update_, b_update_;
  Tensor w_reset_, u_reset_, b_reset_;
  Tensor w_cand_, u_cand_, b_cand_;
};

/// Convenience: append `layer_params` to `all_params`.
void collect(std::vector<Tensor>& all_params, const std::vector<Tensor>& layer_params);

}  // namespace mga::nn
