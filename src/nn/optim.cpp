#include "nn/optim.hpp"

#include <cmath>

#include "util/check.hpp"

namespace mga::nn {

AdamW::AdamW(std::vector<Tensor> params, AdamWConfig config)
    : params_(std::move(params)), config_(config) {
  first_moment_.reserve(params_.size());
  second_moment_.reserve(params_.size());
  for (const auto& p : params_) {
    MGA_CHECK_MSG(p.requires_grad(), "AdamW: all parameters must require grad");
    first_moment_.emplace_back(p.numel(), 0.0f);
    second_moment_.emplace_back(p.numel(), 0.0f);
  }
}

void AdamW::step() {
  ++step_count_;
  const double bias1 = 1.0 - std::pow(config_.beta1, step_count_);
  const double bias2 = 1.0 - std::pow(config_.beta2, step_count_);
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    auto data = params_[pi].data();
    auto grad = params_[pi].grad();
    auto& m = first_moment_[pi];
    auto& v = second_moment_[pi];
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double g = grad[i];
      m[i] = static_cast<float>(config_.beta1 * m[i] + (1.0 - config_.beta1) * g);
      v[i] = static_cast<float>(config_.beta2 * v[i] + (1.0 - config_.beta2) * g * g);
      const double m_hat = m[i] / bias1;
      const double v_hat = v[i] / bias2;
      // Decoupled weight decay: applied directly to the parameter, not the
      // gradient (the defining difference between AdamW and Adam+L2).
      data[i] = static_cast<float>(
          data[i] - config_.learning_rate *
                        (m_hat / (std::sqrt(v_hat) + config_.epsilon) +
                         config_.weight_decay * data[i]));
    }
  }
}

void AdamW::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

Sgd::Sgd(std::vector<Tensor> params, double learning_rate, double momentum)
    : params_(std::move(params)), learning_rate_(learning_rate), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    MGA_CHECK_MSG(p.requires_grad(), "Sgd: all parameters must require grad");
    velocity_.emplace_back(p.numel(), 0.0f);
  }
}

void Sgd::step() {
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    auto data = params_[pi].data();
    auto grad = params_[pi].grad();
    auto& vel = velocity_[pi];
    for (std::size_t i = 0; i < data.size(); ++i) {
      vel[i] = static_cast<float>(momentum_ * vel[i] - learning_rate_ * grad[i]);
      data[i] += vel[i];
    }
  }
}

void Sgd::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

}  // namespace mga::nn
