#include "nn/tensor.hpp"

#include <cmath>
#include <unordered_set>

#include "util/check.hpp"

namespace mga::nn {

using detail::TensorImpl;

namespace {

std::shared_ptr<TensorImpl> make_impl(std::size_t rows, std::size_t cols, bool requires_grad) {
  MGA_CHECK_MSG(rows > 0 && cols > 0, "tensor dimensions must be positive");
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data.assign(rows * cols, 0.0f);
  impl->requires_grad = requires_grad;
  if (requires_grad) impl->grad.assign(rows * cols, 0.0f);
  return impl;
}

}  // namespace

Tensor Tensor::zeros(std::size_t rows, std::size_t cols, bool requires_grad) {
  return Tensor(make_impl(rows, cols, requires_grad));
}

Tensor Tensor::full(std::size_t rows, std::size_t cols, float value, bool requires_grad) {
  auto impl = make_impl(rows, cols, requires_grad);
  for (auto& x : impl->data) x = value;
  return Tensor(std::move(impl));
}

Tensor Tensor::from_data(std::vector<float> values, std::size_t rows, std::size_t cols,
                         bool requires_grad) {
  MGA_CHECK_MSG(values.size() == rows * cols, "from_data: size mismatch");
  auto impl = make_impl(rows, cols, requires_grad);
  impl->data = std::move(values);
  return Tensor(std::move(impl));
}

Tensor Tensor::randn(util::Rng& rng, std::size_t rows, std::size_t cols, float stddev,
                     bool requires_grad) {
  auto impl = make_impl(rows, cols, requires_grad);
  for (auto& x : impl->data) x = static_cast<float>(rng.normal(0.0, stddev));
  return Tensor(std::move(impl));
}

Tensor Tensor::xavier(util::Rng& rng, std::size_t fan_in, std::size_t fan_out,
                      bool requires_grad) {
  auto impl = make_impl(fan_in, fan_out, requires_grad);
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (auto& x : impl->data) x = static_cast<float>(rng.uniform(-limit, limit));
  return Tensor(std::move(impl));
}

Tensor Tensor::scalar(float value, bool requires_grad) {
  return full(1, 1, value, requires_grad);
}

std::size_t Tensor::rows() const noexcept { return impl_ ? impl_->rows : 0; }
std::size_t Tensor::cols() const noexcept { return impl_ ? impl_->cols : 0; }
std::size_t Tensor::numel() const noexcept { return impl_ ? impl_->numel() : 0; }
bool Tensor::requires_grad() const noexcept { return impl_ && impl_->requires_grad; }

std::span<float> Tensor::data() {
  MGA_CHECK(defined());
  return impl_->data;
}

std::span<const float> Tensor::data() const {
  MGA_CHECK(defined());
  return impl_->data;
}

std::span<float> Tensor::grad() {
  MGA_CHECK(defined() && impl_->requires_grad);
  return impl_->grad;
}

std::span<const float> Tensor::grad() const {
  MGA_CHECK(defined() && impl_->requires_grad);
  return impl_->grad;
}

float Tensor::at(std::size_t r, std::size_t c) const {
  MGA_CHECK(defined() && r < impl_->rows && c < impl_->cols);
  return impl_->data[r * impl_->cols + c];
}

void Tensor::set(std::size_t r, std::size_t c, float value) {
  MGA_CHECK(defined() && r < impl_->rows && c < impl_->cols);
  impl_->data[r * impl_->cols + c] = value;
}

float Tensor::item() const {
  MGA_CHECK_MSG(defined() && numel() == 1, "item() requires a 1x1 tensor");
  return impl_->data[0];
}

std::vector<float> Tensor::row(std::size_t r) const {
  MGA_CHECK(defined() && r < impl_->rows);
  const auto begin = impl_->data.begin() + static_cast<std::ptrdiff_t>(r * impl_->cols);
  return {begin, begin + static_cast<std::ptrdiff_t>(impl_->cols)};
}

void Tensor::zero_grad() {
  if (impl_ && impl_->requires_grad)
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

Tensor Tensor::detach() const {
  MGA_CHECK(defined());
  auto impl = make_impl(impl_->rows, impl_->cols, /*requires_grad=*/false);
  impl->data = impl_->data;
  return Tensor(std::move(impl));
}

namespace {

// Iterative post-order DFS producing a topological order of the tape rooted
// at `root`; children (parents in autograd terms) come before the node.
void topo_sort(const std::shared_ptr<TensorImpl>& root,
               std::vector<TensorImpl*>& order) {
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root.get(), 0});
  visited.insert(root.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      TensorImpl* parent = frame.node->parents[frame.next_parent].get();
      ++frame.next_parent;
      if (visited.insert(parent).second) stack.push_back({parent, 0});
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Tensor::backward() {
  MGA_CHECK_MSG(defined() && numel() == 1, "backward() requires a scalar loss");
  MGA_CHECK_MSG(impl_->requires_grad, "backward() on a tensor without grad");

  std::vector<TensorImpl*> order;
  topo_sort(impl_, order);

  impl_->grad[0] = 1.0f;
  // Reverse topological order: every node's grad is complete before its
  // backward_fn pushes contributions into its parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn();
  }
}

double clip_grad_norm(std::span<Tensor> params, double max_norm) {
  MGA_CHECK(max_norm > 0.0);
  double sq_sum = 0.0;
  for (auto& p : params) {
    if (!p.requires_grad()) continue;
    for (const float g : p.grad()) sq_sum += static_cast<double>(g) * g;
  }
  const double norm = std::sqrt(sq_sum);
  if (norm > max_norm) {
    const auto scale = static_cast<float>(max_norm / (norm + 1e-12));
    for (auto& p : params) {
      if (!p.requires_grad()) continue;
      for (float& g : p.grad()) g *= scale;
    }
  }
  return norm;
}

}  // namespace mga::nn
