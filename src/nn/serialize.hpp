// Parameter serialization: save/load a named set of tensors to a simple
// versioned binary container. Enables "train once, tune everywhere" usage of
// the MgaTuner facade (and checkpointing in general).
//
// Format (little-endian):
//   magic "MGAT" | u32 version | u64 count |
//   repeat count times: u64 name_len | name bytes | u64 rows | u64 cols |
//                       rows*cols f32 values
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "nn/tensor.hpp"

namespace mga::nn {

using NamedTensors = std::vector<std::pair<std::string, Tensor>>;

void save_tensors(const NamedTensors& tensors, std::ostream& os);
void save_tensors_file(const NamedTensors& tensors, const std::string& path);

/// Throws std::invalid_argument on malformed input.
[[nodiscard]] NamedTensors load_tensors(std::istream& is);
[[nodiscard]] NamedTensors load_tensors_file(const std::string& path);

/// Copy values from `source` into the same-named tensors of `target`
/// (shapes must match; missing names throw).
void restore_into(const NamedTensors& source, NamedTensors& target);

}  // namespace mga::nn
