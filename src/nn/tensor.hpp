// Minimal dense-tensor + reverse-mode autograd engine.
//
// This is the PyTorch substitute for the whole repository (see DESIGN.md §1).
// Tensors are row-major float matrices ([rows, cols]; vectors are 1xN or Nx1,
// scalars 1x1). A Tensor is a cheap shared handle onto a node in a dynamic
// compute tape; calling backward() on a scalar loss topologically sorts the
// tape and accumulates gradients into every node with requires_grad set.
//
// The op vocabulary (ops.hpp) is exactly what the paper's models need: dense
// layers, GRU gating for GGNN message passing, gather/scatter for graph
// convolution, concat for late fusion, softmax-CE / MSE losses, dropout and
// swap-noise support for the DAE.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace mga::nn {

class Tensor;

namespace detail {

struct TensorImpl {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<float> data;
  std::vector<float> grad;   // same size as data when requires_grad
  bool requires_grad = false;
  // Backward closure: reads this node's grad, accumulates into parents' grads.
  std::function<void()> backward_fn;
  std::vector<std::shared_ptr<TensorImpl>> parents;

  [[nodiscard]] std::size_t numel() const noexcept { return rows * cols; }
};

}  // namespace detail

/// Shared handle to a tape node. Copying a Tensor aliases the same storage.
class Tensor {
 public:
  Tensor() = default;

  // --- construction -------------------------------------------------------

  [[nodiscard]] static Tensor zeros(std::size_t rows, std::size_t cols,
                                    bool requires_grad = false);
  [[nodiscard]] static Tensor full(std::size_t rows, std::size_t cols, float value,
                                   bool requires_grad = false);
  [[nodiscard]] static Tensor from_data(std::vector<float> values, std::size_t rows,
                                        std::size_t cols, bool requires_grad = false);
  /// i.i.d. normal(0, stddev) entries; the standard parameter initializer.
  [[nodiscard]] static Tensor randn(util::Rng& rng, std::size_t rows, std::size_t cols,
                                    float stddev, bool requires_grad = false);
  /// Xavier/Glorot uniform initialization for a [fan_in, fan_out] weight.
  [[nodiscard]] static Tensor xavier(util::Rng& rng, std::size_t fan_in, std::size_t fan_out,
                                     bool requires_grad = true);
  /// 1x1 scalar convenience.
  [[nodiscard]] static Tensor scalar(float value, bool requires_grad = false);

  // --- shape / storage access ---------------------------------------------

  [[nodiscard]] bool defined() const noexcept { return impl_ != nullptr; }
  [[nodiscard]] std::size_t rows() const noexcept;
  [[nodiscard]] std::size_t cols() const noexcept;
  [[nodiscard]] std::size_t numel() const noexcept;
  [[nodiscard]] bool requires_grad() const noexcept;

  [[nodiscard]] std::span<float> data();
  [[nodiscard]] std::span<const float> data() const;
  [[nodiscard]] std::span<float> grad();
  [[nodiscard]] std::span<const float> grad() const;

  [[nodiscard]] float at(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, float value);

  /// Scalar value of a 1x1 tensor.
  [[nodiscard]] float item() const;

  /// Copy of row r as a std::vector (no autograd).
  [[nodiscard]] std::vector<float> row(std::size_t r) const;

  // --- autograd -----------------------------------------------------------

  /// Run reverse-mode differentiation from this (scalar) tensor. Seeds the
  /// output gradient with 1 and accumulates into every reachable parameter.
  void backward();

  /// Zero this node's gradient buffer (optimizers zero whole param sets).
  void zero_grad();

  /// Detached copy: same values, no tape history, no grad.
  [[nodiscard]] Tensor detach() const;

  // Internal: used by ops.cpp to build tape nodes.
  [[nodiscard]] const std::shared_ptr<detail::TensorImpl>& impl() const { return impl_; }
  explicit Tensor(std::shared_ptr<detail::TensorImpl> impl) : impl_(std::move(impl)) {}

 private:
  std::shared_ptr<detail::TensorImpl> impl_;
};

/// Global-norm gradient clipping over a parameter set; returns the pre-clip
/// norm (the GGNN trainer logs it).
double clip_grad_norm(std::span<Tensor> params, double max_norm);

}  // namespace mga::nn
