#include "nn/serialize.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace mga::nn {

namespace {

constexpr char kMagic[4] = {'M', 'G', 'A', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
[[nodiscard]] T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  MGA_CHECK_MSG(static_cast<bool>(is), "serialize: truncated input");
  return value;
}

}  // namespace

void save_tensors(const NamedTensors& tensors, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(tensors.size()));
  for (const auto& [name, tensor] : tensors) {
    MGA_CHECK_MSG(tensor.defined(), "serialize: undefined tensor '" + name + "'");
    write_pod(os, static_cast<std::uint64_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(os, static_cast<std::uint64_t>(tensor.rows()));
    write_pod(os, static_cast<std::uint64_t>(tensor.cols()));
    const auto data = tensor.data();
    os.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  MGA_CHECK_MSG(static_cast<bool>(os), "serialize: write failed");
}

void save_tensors_file(const NamedTensors& tensors, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  MGA_CHECK_MSG(os.is_open(), "serialize: cannot open '" + path + "' for writing");
  save_tensors(tensors, os);
}

NamedTensors load_tensors(std::istream& is) {
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  MGA_CHECK_MSG(static_cast<bool>(is) && std::memcmp(magic, kMagic, 4) == 0,
                "serialize: bad magic");
  const auto version = read_pod<std::uint32_t>(is);
  MGA_CHECK_MSG(version == kVersion, "serialize: unsupported version");
  const auto count = read_pod<std::uint64_t>(is);
  MGA_CHECK_MSG(count < (1ULL << 20), "serialize: implausible tensor count");

  NamedTensors tensors;
  tensors.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint64_t>(is);
    MGA_CHECK_MSG(name_len < 4096, "serialize: implausible name length");
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    const auto rows = read_pod<std::uint64_t>(is);
    const auto cols = read_pod<std::uint64_t>(is);
    MGA_CHECK_MSG(rows > 0 && cols > 0 && rows * cols < (1ULL << 28),
                  "serialize: implausible tensor shape");
    std::vector<float> values(rows * cols);
    is.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(float)));
    MGA_CHECK_MSG(static_cast<bool>(is), "serialize: truncated tensor data");
    tensors.emplace_back(std::move(name),
                         Tensor::from_data(std::move(values), rows, cols));
  }
  return tensors;
}

NamedTensors load_tensors_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  MGA_CHECK_MSG(is.is_open(), "serialize: cannot open '" + path + "'");
  return load_tensors(is);
}

void restore_into(const NamedTensors& source, NamedTensors& target) {
  for (auto& [name, tensor] : target) {
    const auto it = std::find_if(source.begin(), source.end(),
                                 [&](const auto& entry) { return entry.first == name; });
    MGA_CHECK_MSG(it != source.end(), "restore: missing tensor '" + name + "'");
    MGA_CHECK_MSG(it->second.rows() == tensor.rows() && it->second.cols() == tensor.cols(),
                  "restore: shape mismatch for '" + name + "'");
    std::copy(it->second.data().begin(), it->second.data().end(), tensor.data().begin());
  }
}

}  // namespace mga::nn
