#include "ir2vec/encoder.hpp"

#include <cmath>
#include <mutex>
#include <unordered_map>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace mga::ir2vec {

const std::vector<float>& SeedVocabulary::embedding(const std::string& entity) const {
  {
    const std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = cache_.find(entity);
    if (it != cache_.end()) return it->second;
  }

  // Deterministic per-entity vector: RNG seeded by the entity's stable hash,
  // scaled to keep the expected vector norm ~1 regardless of kDim.
  util::Rng rng(util::fnv1a(entity));
  std::vector<float> vec(kDim);
  const double scale = 1.0 / std::sqrt(static_cast<double>(kDim));
  for (auto& x : vec) x = static_cast<float>(rng.normal(0.0, scale));

  const std::unique_lock<std::shared_mutex> lock(mutex_);
  // A racing thread may have inserted meanwhile; emplace keeps the first
  // entry (both are identical — the vector is a pure function of the key).
  return cache_.emplace(entity, std::move(vec)).first->second;
}

const SeedVocabulary& Encoder::vocabulary() {
  static const SeedVocabulary shared;
  return shared;
}

namespace {

void axpy(std::vector<float>& acc, float alpha, const std::vector<float>& x) {
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += alpha * x[i];
}

void l2_normalize(std::vector<float>& vec) {
  double norm_sq = 0.0;
  for (const float x : vec) norm_sq += static_cast<double>(x) * x;
  if (norm_sq <= 0.0) return;
  const auto inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
  for (auto& x : vec) x *= inv;
}

[[nodiscard]] std::string operand_entity(const ir::Value& operand) {
  switch (operand.kind()) {
    case ir::ValueKind::kInstruction:
      return "arg:ssa";
    case ir::ValueKind::kArgument:
      return "arg:param";
    case ir::ValueKind::kGlobal:
      return "arg:global";
    case ir::ValueKind::kConstant:
      return "arg:const:" + std::string(ir::type_name(operand.type()));
  }
  return "arg:unknown";
}

}  // namespace

std::vector<float> Encoder::encode_function(const ir::Function& function) const {
  MGA_CHECK_MSG(!function.is_declaration(), "cannot encode a declaration");

  // Symbolic (seed) encoding per instruction.
  std::vector<const ir::Instruction*> instrs;
  std::unordered_map<const ir::Instruction*, std::size_t> index;
  for (const auto& block : function.blocks())
    for (const auto& instr : block->instructions()) {
      index[instr.get()] = instrs.size();
      instrs.push_back(instr.get());
    }

  std::vector<std::vector<float>> base(instrs.size(), std::vector<float>(kDim, 0.0f));
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    const ir::Instruction& instr = *instrs[i];
    axpy(base[i], kOpcodeWeight,
         vocabulary().embedding("opcode:" + std::string(ir::opcode_name(instr.opcode()))));
    axpy(base[i], kTypeWeight,
         vocabulary().embedding("type:" + std::string(ir::type_name(instr.type()))));
    for (const ir::Value* operand : instr.operands())
      axpy(base[i], kArgWeight, vocabulary().embedding(operand_entity(*operand)));
  }

  // Flow-aware propagation along use-def chains: each pass folds the current
  // vectors of operand definitions into the user's vector.
  std::vector<std::vector<float>> current = base;
  for (int pass = 0; pass < options_.flow_iterations; ++pass) {
    std::vector<std::vector<float>> next = base;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      for (const ir::Value* operand : instrs[i]->operands()) {
        if (operand->kind() != ir::ValueKind::kInstruction) continue;
        const auto it = index.find(static_cast<const ir::Instruction*>(operand));
        if (it == index.end()) continue;  // defined in another function
        axpy(next[i], options_.flow_decay, current[it->second]);
      }
    }
    current = std::move(next);
  }

  // Region vector = sum over instructions, normalized.
  std::vector<float> region(kDim, 0.0f);
  for (const auto& vec : current) axpy(region, 1.0f, vec);
  l2_normalize(region);
  return region;
}

std::vector<float> Encoder::encode_module(const ir::Module& module) const {
  std::vector<float> acc(kDim, 0.0f);
  bool any = false;
  for (const auto& fn : module.functions()) {
    if (fn->is_declaration()) continue;
    axpy(acc, 1.0f, encode_function(*fn));
    any = true;
  }
  MGA_CHECK_MSG(any, "module has no defined functions");
  l2_normalize(acc);
  return acc;
}

}  // namespace mga::ir2vec
