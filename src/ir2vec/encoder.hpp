// IR2Vec-style distributed program vectors (VenkataKeerthy et al., TACO'20),
// the second modality of the MGA tuner.
//
// Recipe (scaled-down but structurally faithful):
//  1. a *seed embedding vocabulary* assigns a deterministic dense vector to
//     every IR entity (opcode, type, operand kind);
//  2. each instruction is encoded as Wo·E(opcode) + Wt·E(type) + Wa·ΣE(arg);
//  3. a *flow-aware* fixpoint propagates operand-definition vectors along
//     use-def chains (this is what distinguishes IR2Vec from bag-of-opcodes);
//  4. region/function vectors are the sum of their instruction vectors,
//     L2-normalized.
#pragma once

#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "ir/function.hpp"

namespace mga::ir2vec {

/// Embedding dimensionality (paper uses 300; a capacity knob, see DESIGN.md).
inline constexpr std::size_t kDim = 64;

/// Entity weights from the IR2Vec paper.
inline constexpr float kOpcodeWeight = 1.0f;
inline constexpr float kTypeWeight = 0.5f;
inline constexpr float kArgWeight = 0.2f;

/// Deterministic seed vocabulary: entity string -> dense vector. The same
/// entity always maps to the same vector across processes and runs.
///
/// Thread-safe: the serve-layer worker pool encodes kernels concurrently, so
/// the memo is guarded by a shared_mutex — the hot path (entity already
/// memoized) takes the lock shared. unordered_map never invalidates
/// references to mapped values, so returned references stay stable.
class SeedVocabulary {
 public:
  SeedVocabulary() = default;

  /// Embedding for an entity key such as "opcode:fmul" or "type:f64".
  /// Vectors are memoized; lookups after the first are O(1).
  [[nodiscard]] const std::vector<float>& embedding(const std::string& entity) const;

 private:
  mutable std::shared_mutex mutex_;
  mutable std::unordered_map<std::string, std::vector<float>> cache_;
};

struct EncoderOptions {
  /// Use-def propagation passes (flow-aware component). 0 = symbolic only.
  int flow_iterations = 2;
  /// Contribution of operand definitions per pass.
  float flow_decay = 0.2f;
};

class Encoder {
 public:
  explicit Encoder(EncoderOptions options = {}) : options_(options) {}

  /// Function-level program vector (L2-normalized, dimension kDim).
  [[nodiscard]] std::vector<float> encode_function(const ir::Function& function) const;

  /// Module vector: sum of defined-function vectors, L2-normalized.
  [[nodiscard]] std::vector<float> encode_module(const ir::Module& module) const;

  /// The process-wide seed vocabulary all encoders share: entity vectors are
  /// pure functions of the entity string, so sharing keeps the memo warm
  /// across the short-lived Encoder instances on the serve path.
  [[nodiscard]] static const SeedVocabulary& vocabulary();

 private:
  EncoderOptions options_;
};

}  // namespace mga::ir2vec
