// Mechanistic multicore execution model. Produces, for a (kernel workload,
// machine, input size, OpenMP configuration) tuple, a simulated wall-clock
// time and the PAPI counter set the paper profiles.
//
// The model is a roofline core (compute vs. bandwidth ceilings) extended with
// the phenomena the paper's tuning task hinges on:
//   * a 3-level cache hierarchy with smooth capacity transitions, so the 30
//     input sizes stress L1/L2/L3 to different degrees (§4.1.1);
//   * Amdahl serial fraction + per-schedule load-imbalance and dispatch-
//     overhead laws, so (threads, schedule, chunk) genuinely trade off;
//   * thread-spawn and synchronization costs, so small inputs prefer fewer
//     threads (Fig. 1) and dependency-bound kernels (trisolv) prefer serial;
//   * branch misprediction penalties feeding the counter model.
//
// All randomness is a deterministic ±~2% lognormal "measurement jitter"
// keyed on (kernel, machine, input, config) so repeated calls agree.
#pragma once

#include "hwsim/machine.hpp"
#include "hwsim/workload.hpp"

namespace mga::hwsim {

/// Simulate one execution. `input_bytes` is the kernel's data-set size
/// (paper range: 3.5 KB – 0.5 GB).
[[nodiscard]] RunResult cpu_execute(const KernelWorkload& workload,
                                    const MachineConfig& machine, double input_bytes,
                                    const OmpConfig& config);

/// The paper's default configuration: all hardware threads, static schedule,
/// implementation-chosen chunk.
[[nodiscard]] OmpConfig default_config(const MachineConfig& machine);

/// Smooth capacity-miss transition used by the cache model (exposed for
/// property tests): fraction of accesses missing a cache of `capacity_bytes`
/// given a resident working set of `working_set_bytes`.
[[nodiscard]] double capacity_miss_fraction(double working_set_bytes, double capacity_bytes);

}  // namespace mga::hwsim
