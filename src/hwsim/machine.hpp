// Machine descriptions for the simulated testbeds. The preset values follow
// the public spec sheets of the CPUs/GPUs named in the paper's §4
// "Experimental Systems and Software"; what matters for the reproduction is
// the *relative* structure (cache capacities, bandwidth ceilings, core
// counts), not absolute accuracy.
#pragma once

#include <string>
#include <vector>

namespace mga::hwsim {

struct MachineConfig {
  std::string name;
  int cores = 8;
  int smt = 1;  // hardware threads per core
  double frequency_ghz = 3.8;
  double flops_per_cycle = 4.0;  // per-core sustained f64 ops/cycle

  // Cache capacities (L1/L2 per core, L3 shared).
  double l1_kb = 32.0;
  double l2_kb = 256.0;
  double l3_mb = 16.0;

  // Memory system.
  double memory_bandwidth_gbs = 40.0;      // all-core saturated
  double per_thread_bandwidth_gbs = 12.0;  // single-thread achievable

  // Overheads.
  double thread_spawn_us = 6.0;       // per-thread fork/join cost
  double chunk_dispatch_us = 0.18;    // per-chunk cost of dynamic scheduling
  double sync_op_ns = 60.0;           // per atomic/critical operation
  double branch_miss_penalty_cycles = 16.0;

  [[nodiscard]] int hardware_threads() const noexcept { return cores * smt; }
};

/// 8-core Intel i7-10700K (Comet Lake) — §4.1.3 testbed.
[[nodiscard]] MachineConfig comet_lake();

/// 10-core / 20-thread Intel Xeon Silver 4114 (Skylake-SP) — §4.1.4 testbed.
[[nodiscard]] MachineConfig skylake_sp();

/// Single-socket 8-core Broadwell (CloudLab) — §4.1.5 portability target.
[[nodiscard]] MachineConfig broadwell();

/// Single-socket 8-core Sandy Bridge (CloudLab) — §4.1.5 portability target.
[[nodiscard]] MachineConfig sandy_bridge();

/// Intel Core i7-3820 — CPU side of the §4.2 device-mapping dataset.
[[nodiscard]] MachineConfig ivy_bridge_i7_3820();

struct GpuConfig {
  std::string name;
  double peak_gflops = 3000.0;
  double memory_bandwidth_gbs = 220.0;
  double pcie_bandwidth_gbs = 12.0;
  double launch_latency_us = 12.0;
  double per_call_ns = 20.0;  // device-side per-call drag (no inlining, spills)
  int preferred_workgroup = 256;      // occupancy sweet spot
};

/// AMD Tahiti 7970 — §4.2 device-mapping GPU.
[[nodiscard]] GpuConfig tahiti_7970();

/// NVIDIA GTX 970 — §4.2 device-mapping GPU.
[[nodiscard]] GpuConfig gtx_970();

}  // namespace mga::hwsim
