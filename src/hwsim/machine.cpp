#include "hwsim/machine.hpp"

namespace mga::hwsim {

MachineConfig comet_lake() {
  MachineConfig m;
  m.name = "comet-lake";
  m.cores = 8;
  m.smt = 1;
  m.frequency_ghz = 3.8;
  m.flops_per_cycle = 4.0;
  m.l1_kb = 32.0;
  m.l2_kb = 256.0;
  m.l3_mb = 16.0;
  m.memory_bandwidth_gbs = 45.0;
  m.per_thread_bandwidth_gbs = 14.0;
  m.thread_spawn_us = 22.0;
  m.chunk_dispatch_us = 0.08;
  return m;
}

MachineConfig skylake_sp() {
  MachineConfig m;
  m.name = "skylake-sp";
  m.cores = 10;
  m.smt = 2;
  m.frequency_ghz = 2.2;
  m.flops_per_cycle = 4.0;
  m.l1_kb = 32.0;
  m.l2_kb = 1024.0;
  m.l3_mb = 13.75;
  m.memory_bandwidth_gbs = 60.0;
  m.per_thread_bandwidth_gbs = 11.0;
  m.thread_spawn_us = 24.0;
  m.chunk_dispatch_us = 0.10;
  return m;
}

MachineConfig broadwell() {
  MachineConfig m;
  m.name = "broadwell";
  m.cores = 8;
  m.smt = 1;
  m.frequency_ghz = 2.4;
  m.flops_per_cycle = 4.0;
  m.l1_kb = 32.0;
  m.l2_kb = 256.0;
  m.l3_mb = 20.0;
  m.memory_bandwidth_gbs = 38.0;
  m.per_thread_bandwidth_gbs = 10.0;
  m.thread_spawn_us = 23.0;
  m.chunk_dispatch_us = 0.09;
  return m;
}

MachineConfig sandy_bridge() {
  MachineConfig m;
  m.name = "sandy-bridge";
  m.cores = 8;
  m.smt = 1;
  m.frequency_ghz = 2.6;
  m.flops_per_cycle = 2.0;
  m.l1_kb = 32.0;
  m.l2_kb = 256.0;
  m.l3_mb = 20.0;
  m.memory_bandwidth_gbs = 32.0;
  m.per_thread_bandwidth_gbs = 9.0;
  m.thread_spawn_us = 25.0;
  m.chunk_dispatch_us = 0.11;
  return m;
}

MachineConfig ivy_bridge_i7_3820() {
  MachineConfig m;
  m.name = "i7-3820";
  m.cores = 4;
  m.smt = 2;
  m.frequency_ghz = 3.6;
  m.flops_per_cycle = 2.0;
  m.l1_kb = 32.0;
  m.l2_kb = 256.0;
  m.l3_mb = 10.0;
  m.memory_bandwidth_gbs = 40.0;
  m.per_thread_bandwidth_gbs = 12.0;
  m.thread_spawn_us = 22.0;
  m.chunk_dispatch_us = 0.09;
  return m;
}

GpuConfig tahiti_7970() {
  GpuConfig g;
  g.name = "amd-tahiti-7970";
  g.peak_gflops = 3790.0;
  g.memory_bandwidth_gbs = 264.0;
  g.pcie_bandwidth_gbs = 12.0;
  g.launch_latency_us = 15.0;
  g.per_call_ns = 28.0;
  g.preferred_workgroup = 256;
  return g;
}

GpuConfig gtx_970() {
  GpuConfig g;
  g.name = "nvidia-gtx-970";
  g.peak_gflops = 3494.0;
  g.memory_bandwidth_gbs = 224.0;
  g.pcie_bandwidth_gbs = 12.0;
  g.launch_latency_us = 10.0;
  g.per_call_ns = 18.0;
  g.preferred_workgroup = 128;
  return g;
}

}  // namespace mga::hwsim
