#include "hwsim/gpu_model.hpp"

#include <algorithm>
#include <cmath>

#include "hwsim/cpu_model.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mga::hwsim {

GpuRunResult gpu_execute(const KernelWorkload& w, const GpuConfig& gpu,
                         double transfer_bytes, int workgroup_size) {
  MGA_CHECK(transfer_bytes > 0.0 && workgroup_size >= 1);

  const double elements = w.elements(transfer_bytes);

  // Host <-> device transfer plus launch latency.
  const double transfer_seconds =
      transfer_bytes * 2.0 / (gpu.pcie_bandwidth_gbs * 1e9) + gpu.launch_latency_us * 1e-6;

  // Occupancy: undersized workgroups underfill the SIMD units; oversizing
  // past the sweet spot costs a little scheduling slack.
  const double ratio =
      static_cast<double>(workgroup_size) / static_cast<double>(gpu.preferred_workgroup);
  const double occupancy =
      ratio < 1.0 ? 0.25 + 0.75 * ratio : 1.0 / (1.0 + 0.12 * (ratio - 1.0));

  // SIMT divergence: data-dependent branches serialize warp lanes.
  const double divergence_factor =
      1.0 + 3.0 * w.gpu_divergence + 1.5 * w.irregularity;

  const double compute_seconds = std::pow(elements, w.work_exponent) * w.flops_per_elem /
                                 (gpu.peak_gflops * 1e9) * divergence_factor / occupancy;
  const double memory_seconds =
      elements * w.bytes_per_elem * (1.0 - 0.5 * w.locality) /
      (gpu.memory_bandwidth_gbs * 1e9) / occupancy;

  // Device-side function calls: inlined cheaply when rare, but call-heavy
  // kernels pay per-call overhead that scales with the element count — the
  // effect that flips large-input call-heavy kernels back to the CPU.
  const double call_seconds = elements * w.calls_per_elem * gpu.per_call_ns * 1e-9;

  // Synchronization maps to global atomics, far costlier than on CPU.
  const double sync_seconds = elements * w.sync_per_elem * 400e-9;

  double kernel_seconds =
      std::max(compute_seconds, memory_seconds) + call_seconds + sync_seconds;

  // Deterministic jitter, as in the CPU model.
  util::Rng jitter(util::hash_combine(
      util::hash_combine(util::fnv1a(w.name), util::fnv1a(gpu.name)),
      static_cast<std::uint64_t>(transfer_bytes) * 8191 +
          static_cast<std::uint64_t>(workgroup_size)));
  kernel_seconds *= std::exp(0.02 * jitter.normal());

  GpuRunResult result;
  result.transfer_seconds = transfer_seconds;
  result.kernel_seconds = kernel_seconds;
  result.seconds = transfer_seconds + kernel_seconds;
  return result;
}

double cpu_reference_seconds(const KernelWorkload& w, const MachineConfig& host,
                             double transfer_bytes) {
  return cpu_execute(w, host, transfer_bytes, default_config(host)).seconds;
}

bool gpu_wins(const KernelWorkload& w, const GpuConfig& gpu, const MachineConfig& host,
              double transfer_bytes, int workgroup_size) {
  const double gpu_seconds = gpu_execute(w, gpu, transfer_bytes, workgroup_size).seconds;
  return gpu_seconds < cpu_reference_seconds(w, host, transfer_bytes);
}

}  // namespace mga::hwsim
