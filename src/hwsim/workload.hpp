// Workload descriptors and runtime-configuration types shared by the CPU and
// GPU execution models.
//
// A KernelWorkload is the simulator-facing characterization of a kernel: how
// much arithmetic and memory traffic it generates per element, how balanced
// its iterations are, how predictable its branches are, and so on. Corpus
// generators derive one per kernel, consistent with the IR they emit (the
// coupling is asserted in tests/test_corpus.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace mga::hwsim {

/// OpenMP scheduling policies in the paper's Table 2 search space.
enum class Schedule : std::uint8_t { kStatic, kDynamic, kGuided };

[[nodiscard]] constexpr const char* schedule_name(Schedule s) noexcept {
  switch (s) {
    case Schedule::kStatic: return "static";
    case Schedule::kDynamic: return "dynamic";
    case Schedule::kGuided: return "guided";
  }
  return "?";
}

/// An OpenMP runtime configuration (the tuner's prediction target).
struct OmpConfig {
  int threads = 1;
  Schedule schedule = Schedule::kStatic;
  /// 0 = implementation default (static: N/threads; dynamic/guided: 1).
  int chunk = 0;

  [[nodiscard]] bool operator==(const OmpConfig&) const = default;
};

/// Static execution characterization of a parallel kernel / loop.
struct KernelWorkload {
  std::string name;

  // Per-element work profile.
  double flops_per_elem = 1.0;       // arithmetic operations per element
  double bytes_per_elem = 8.0;       // streamed bytes per element
  double branches_per_elem = 0.1;    // conditional branches per element
  double sync_per_elem = 0.0;        // atomics / critical sections per element
  double calls_per_elem = 0.0;       // function-call overhead per element

  // Structure.
  double working_set_factor = 1.0;   // working set = factor * input bytes
  /// Fraction of the working set touched by *every* thread (shared operands
  /// such as gemm's B matrix); the rest partitions across threads.
  double shared_fraction = 0.3;
  double locality = 0.5;             // 0..1; 1 = perfect cache reuse
  double parallel_fraction = 0.99;   // Amdahl's parallel fraction
  double irregularity = 0.0;         // 0..1 iteration-cost imbalance
  double branch_predictability = 0.95;  // 0..1; 1 = never mispredicts
  double dependency_penalty = 0.0;   // loop-carried-dependence drag per extra thread
  double gpu_divergence = 0.1;       // 0..1 SIMT divergence on GPUs
  /// Arithmetic work grows as elements^work_exponent (deep loop nests such
  /// as gemm do super-linear work per byte of input: N^3 flops on N^2 data).
  double work_exponent = 1.0;

  /// Elements processed for a given input size (8-byte elements).
  [[nodiscard]] double elements(double input_bytes) const noexcept {
    return input_bytes / 8.0;
  }
};

/// The five PAPI counters the paper selects by Pearson correlation (§4.1.1),
/// plus reference cycles (used by Fig. 8 and the portability scaling).
struct PapiCounters {
  double l1_cache_misses = 0.0;
  double l2_cache_misses = 0.0;
  double l3_load_misses = 0.0;
  double retired_branches = 0.0;
  double mispredicted_branches = 0.0;
  double cpu_clock_cycles = 0.0;

  static constexpr int kNumSelected = 5;  // excludes cpu_clock_cycles

  /// The selected counters as a flat feature vector (model input order).
  [[nodiscard]] std::array<double, kNumSelected> selected() const noexcept {
    return {l1_cache_misses, l2_cache_misses, l3_load_misses, retired_branches,
            mispredicted_branches};
  }
};

/// Result of one simulated execution.
struct RunResult {
  double seconds = 0.0;
  PapiCounters counters;
};

}  // namespace mga::hwsim
