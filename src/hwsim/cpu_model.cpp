#include "hwsim/cpu_model.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace mga::hwsim {

namespace {

constexpr double kCacheLineBytes = 64.0;
constexpr double kL2MissLatencyCycles = 14.0;
constexpr double kL3MissLatencyCycles = 42.0;
constexpr double kCallCostNs = 9.0;
constexpr double kJitterSigma = 0.018;

/// Effective computational thread count: SMT siblings contribute ~35% of a
/// physical core on throughput-bound loops.
[[nodiscard]] double effective_compute_threads(const MachineConfig& m, int threads) {
  const double physical = std::min<double>(threads, m.cores);
  const double smt_extra = std::max(0, threads - m.cores);
  return physical + 0.35 * smt_extra;
}

/// Aggregate achievable bandwidth at a thread count: linear at first, then
/// saturating at the socket ceiling.
[[nodiscard]] double effective_bandwidth_gbs(const MachineConfig& m, int threads) {
  const double linear = m.per_thread_bandwidth_gbs * std::pow(threads, 0.72);
  return std::min(m.memory_bandwidth_gbs, linear);
}

struct ImbalanceModel {
  double factor = 1.0;       // multiplier on the parallel compute time
  double dispatch_seconds = 0.0;  // scheduler bookkeeping
};

/// Load imbalance + dispatch overhead per schedule. `iterations` is the
/// parallel loop trip count (elements here).
[[nodiscard]] ImbalanceModel schedule_model(const KernelWorkload& w,
                                            const MachineConfig& m, Schedule schedule,
                                            int chunk, double iterations, int threads) {
  ImbalanceModel result;
  if (threads <= 1) return result;

  const double per_thread_iters = iterations / threads;
  const double dispatch_cost = m.chunk_dispatch_us * 1e-6;

  switch (schedule) {
    case Schedule::kStatic: {
      // Default static = one block per thread: worst case for irregular
      // loops. Explicit small chunks interleave iterations round-robin and
      // recover most of the balance at negligible cost.
      double block_coefficient = 1.6;
      if (chunk > 0) {
        const double relative_chunk = std::min(1.0, chunk / std::max(1.0, per_thread_iters));
        block_coefficient = 0.5 + 1.1 * relative_chunk;
        // Static chunking has a tiny bookkeeping cost per chunk.
        result.dispatch_seconds = (iterations / chunk) * dispatch_cost * 0.02 / threads;
      }
      result.factor = 1.0 + w.irregularity * (1.0 - 1.0 / threads) * block_coefficient;
      return result;
    }
    case Schedule::kDynamic: {
      const double effective_chunk = chunk > 0 ? chunk : 1.0;
      // Work stealing balances almost perfectly when chunks are small
      // relative to the per-thread share…
      const double chunk_share =
          std::min(1.0, effective_chunk * threads / std::max(1.0, iterations));
      result.factor = 1.0 + w.irregularity * chunk_share * 0.6;
      // …but every chunk costs a trip through the (contended) dispatcher.
      const double dispatches = iterations / effective_chunk;
      result.dispatch_seconds = dispatches * dispatch_cost / std::sqrt(threads);
      return result;
    }
    case Schedule::kGuided: {
      const double effective_chunk = chunk > 0 ? chunk : 1.0;
      result.factor = 1.0 + w.irregularity * (1.0 - 1.0 / threads) * 0.3;
      // Geometrically shrinking chunks: O(t * log(iters/chunk)) dispatches.
      const double dispatches =
          threads * std::max(1.0, std::log2(iterations / (effective_chunk * threads) + 1.0));
      result.dispatch_seconds = dispatches * dispatch_cost / threads;
      return result;
    }
  }
  return result;
}

}  // namespace

double capacity_miss_fraction(double working_set_bytes, double capacity_bytes) {
  MGA_CHECK(working_set_bytes > 0.0 && capacity_bytes > 0.0);
  // Smooth logistic in log-space: ~0 when the set fits with slack, ~1 when it
  // exceeds capacity by an order of magnitude.
  const double x = std::log(working_set_bytes / capacity_bytes);
  return 1.0 / (1.0 + std::exp(-1.8 * x));
}

OmpConfig default_config(const MachineConfig& machine) {
  return {machine.hardware_threads(), Schedule::kStatic, 0};
}

RunResult cpu_execute(const KernelWorkload& w, const MachineConfig& m, double input_bytes,
                      const OmpConfig& config) {
  MGA_CHECK_MSG(config.threads >= 1 && config.threads <= m.hardware_threads(),
                "thread count outside machine range");
  MGA_CHECK(input_bytes > 0.0);

  const double elements = w.elements(input_bytes);
  const int threads = config.threads;
  const double freq_hz = m.frequency_ghz * 1e9;

  // --- cache hierarchy ------------------------------------------------------
  // Parallel threads partition the working set; locality discounts misses.
  const double working_set = w.working_set_factor * input_bytes;
  // Shared operands are touched by every thread; only the rest partitions.
  const double per_thread_set =
      working_set * (w.shared_fraction + (1.0 - w.shared_fraction) / threads);
  const double locality_discount = 1.0 - 0.75 * w.locality;

  // Misses are counted at cache-line granularity. A unit-stride kernel
  // touches all 8 elements of a 64-byte line per miss; an irregular one
  // (gather/scatter) wastes most of each line. Spatial utilization scales
  // with the workload's locality.
  const double elements_per_line = 1.0 + 7.0 * w.locality;
  const double accesses = elements * (w.bytes_per_elem / 8.0) / elements_per_line;
  // Interleaved (dynamic/guided) chunks break spatial locality in the upper
  // cache levels when chunks are small.
  double schedule_locality_penalty = 1.0;
  if (config.schedule != Schedule::kStatic) {
    const double effective_chunk = config.chunk > 0 ? config.chunk : 1.0;
    schedule_locality_penalty = 1.0 + 0.25 * std::min(1.0, 8.0 / effective_chunk);
  }
  // SMT siblings share their core's L1/L2: running more threads than cores
  // halves the per-thread private-cache capacity.
  const double smt_sharing = threads > m.cores ? 2.0 : 1.0;
  const double l1_rate =
      locality_discount * schedule_locality_penalty *
      capacity_miss_fraction(per_thread_set, m.l1_kb * 1024.0 / smt_sharing);
  const double l2_rate =
      capacity_miss_fraction(per_thread_set, m.l2_kb * 1024.0 / smt_sharing);
  // Shared L3: concurrent threads conflict, raising effective pressure.
  const double l3_pressure =
      working_set * (1.0 + 0.3 * (threads - 1) / std::max(1, m.hardware_threads()));
  const double l3_rate = capacity_miss_fraction(l3_pressure, m.l3_mb * 1024.0 * 1024.0);

  const double l1_misses = accesses * std::max(0.002, l1_rate);
  const double l2_misses = l1_misses * std::max(0.02, l2_rate);
  const double l3_misses = l2_misses * std::max(0.02, l3_rate);

  // --- memory time ----------------------------------------------------------
  const double dram_traffic = l3_misses * kCacheLineBytes;
  double memory_seconds = dram_traffic / (effective_bandwidth_gbs(m, threads) * 1e9);
  // Coherence / cross-thread interference drag for streaming kernels.
  memory_seconds *= 1.0 + 0.03 * (threads - 1) * (1.0 - w.locality);
  // Queueing delay past the bandwidth saturation point: extra threads beyond
  // what the memory system can feed actively hurt (observed on real STREAM
  // runs, and the reason mid thread counts win on bandwidth-bound loops).
  const double saturation_threads =
      std::pow(m.memory_bandwidth_gbs / m.per_thread_bandwidth_gbs, 1.0 / 0.72);
  if (threads > saturation_threads)
    memory_seconds *= 1.0 + 0.15 * (threads / saturation_threads - 1.0);

  // Latency component of upper-level misses. Out-of-order cores overlap
  // multiple outstanding misses (memory-level parallelism), so only a small
  // fraction of the raw miss latency is exposed; what remains parallelizes
  // across threads.
  constexpr double kMemoryLevelParallelism = 6.0;
  const double latency_seconds =
      (l2_misses * kL2MissLatencyCycles + l3_misses * kL3MissLatencyCycles) /
      kMemoryLevelParallelism / freq_hz / threads;

  // --- compute time ---------------------------------------------------------
  const double work_units = std::pow(elements, w.work_exponent);
  const double flop_seconds_1t =
      work_units * w.flops_per_elem / (freq_hz * m.flops_per_cycle);
  const double serial_seconds = (1.0 - w.parallel_fraction) * flop_seconds_1t;

  const ImbalanceModel sched =
      schedule_model(w, m, config.schedule, config.chunk, elements, threads);
  double parallel_seconds = w.parallel_fraction * flop_seconds_1t /
                            effective_compute_threads(m, threads) * sched.factor;
  // Loop-carried-dependence drag: each extra thread adds stalls.
  parallel_seconds *= 1.0 + w.dependency_penalty * (threads - 1);

  // --- branches --------------------------------------------------------------
  const double retired_branches = elements * (w.branches_per_elem + 1.0);
  const double mispredicted =
      elements * w.branches_per_elem * (1.0 - w.branch_predictability) +
      retired_branches * 0.0015;
  const double branch_seconds =
      mispredicted * m.branch_miss_penalty_cycles / freq_hz / threads;

  // --- synchronization / calls / fork-join ------------------------------------
  const double sync_seconds = elements * w.sync_per_elem * (m.sync_op_ns * 1e-9) *
                              (1.0 + 0.5 * (threads - 1));
  const double call_seconds = elements * w.calls_per_elem * (kCallCostNs * 1e-9) / threads;
  // Fork/join cost grows superlinearly: waking and joining t threads involves
  // O(t) wakeups plus barrier contention (measured OpenMP runtimes show tiny
  // loops running 20-50x slower inside a wide parallel region).
  const double spawn_seconds = std::pow(threads, 1.30) * m.thread_spawn_us * 1e-6;

  // Roofline overlap of compute and memory streams; overheads are additive.
  const double overlapped =
      std::max(parallel_seconds + latency_seconds + branch_seconds + call_seconds,
               memory_seconds);
  double seconds = serial_seconds + overlapped + sync_seconds + spawn_seconds +
                   sched.dispatch_seconds;

  // Deterministic measurement jitter.
  const std::uint64_t key = util::hash_combine(
      util::hash_combine(util::fnv1a(w.name), util::fnv1a(m.name)),
      util::hash_combine(static_cast<std::uint64_t>(input_bytes),
                         static_cast<std::uint64_t>(
                             threads * 131 + static_cast<int>(config.schedule) * 17 +
                             config.chunk)));
  util::Rng jitter(key);
  seconds *= std::exp(kJitterSigma * jitter.normal());

  RunResult result;
  result.seconds = seconds;
  result.counters.l1_cache_misses = l1_misses;
  result.counters.l2_cache_misses = l2_misses;
  result.counters.l3_load_misses = l3_misses;
  result.counters.retired_branches = retired_branches;
  result.counters.mispredicted_branches = mispredicted;
  result.counters.cpu_clock_cycles = seconds * freq_hz;
  return result;
}

}  // namespace mga::hwsim
