// GPU execution model for the §4.2 heterogeneous device-mapping task.
//
// The ground truth the paper's dataset encodes is *which device wins* for a
// (kernel, transfer size, workgroup size) triple. The model captures the
// effects that decide that contest: PCIe transfer cost and launch latency
// (small inputs), roofline kernel time scaled by occupancy (workgroup size)
// and SIMT divergence, and per-call device overhead — the paper's makea
// corner case, where call-heavy kernels flip from GPU (small inputs) to CPU
// (large inputs).
#pragma once

#include "hwsim/machine.hpp"
#include "hwsim/workload.hpp"

namespace mga::hwsim {

struct GpuRunResult {
  double seconds = 0.0;
  double transfer_seconds = 0.0;
  double kernel_seconds = 0.0;
};

/// Simulate an OpenCL kernel execution on a GPU.
[[nodiscard]] GpuRunResult gpu_execute(const KernelWorkload& workload, const GpuConfig& gpu,
                                       double transfer_bytes, int workgroup_size);

/// CPU-side execution of the same kernel (default OpenMP configuration on the
/// dataset's i7-3820 host).
[[nodiscard]] double cpu_reference_seconds(const KernelWorkload& workload,
                                           const MachineConfig& host, double transfer_bytes);

/// Ground-truth device label: true if the GPU is faster.
[[nodiscard]] bool gpu_wins(const KernelWorkload& workload, const GpuConfig& gpu,
                            const MachineConfig& host, double transfer_bytes,
                            int workgroup_size);

}  // namespace mga::hwsim
