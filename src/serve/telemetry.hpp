// Serve-side exporters of the telemetry plane (DESIGN.md §12): translate
// the serve snapshots (stats, SLO verdicts, watchdog verdicts) into labeled
// Prometheus families / operator JSON, and wire the standard endpoint set
// (/metrics, /healthz, /slo, /exemplars) onto an ObsServer.
//
// The exporters are pure snapshot -> registry functions so they are
// testable without a running service and reusable by a future per-process
// shard endpoint (ROADMAP: multi-process sharding). The facade calls them
// on the scrape path with a fresh local registry, then appends
// MetricsRegistry::global() (runtime-plan compile/execute counters), so one
// scrape covers serve + runtime + SLO + watchdog.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/server.hpp"
#include "obs/slo.hpp"
#include "obs/watchdog.hpp"
#include "serve/stats.hpp"

namespace mga::serve {

class TuningService;

/// mga_serve_* families from one aggregated stats snapshot: request /
/// batch / cache / pipeline counters and latency summaries per shard
/// (`shard` label; a single-shard service exports shard="0"), QoS counters
/// and latency summaries per tier (`tier` label), forward-path split, and
/// the service uptime / health gauges.
void export_service_metrics(obs::MetricsRegistry& registry,
                            const ServiceStatsSnapshot& snapshot);

/// mga_slo_* families: per-tier burn rates, windowed p95, long-window
/// good/bad counts and verdicts from the service-level aggregate, plus a
/// per-shard health gauge and the worst-route window counts.
void export_slo_metrics(obs::MetricsRegistry& registry,
                        const obs::SloTracker::Snapshot& service,
                        const std::vector<obs::SloTracker::Snapshot>& shards);

/// mga_watchdog_* families: overall liveness verdict plus per-probe beats,
/// pending gauge, stage health, and seconds since progress.
void export_watchdog_metrics(obs::MetricsRegistry& registry,
                             const obs::StallWatchdog::Snapshot& snapshot);

/// Operator JSON for /slo: service + per-tier SLO verdicts, worst routes,
/// per-shard health, and the watchdog probe table.
[[nodiscard]] std::string slo_to_json(const obs::SloTracker::Snapshot& service,
                                      const std::vector<obs::SloTracker::Snapshot>& shards,
                                      const obs::StallWatchdog::Snapshot& watchdog,
                                      double uptime_seconds);

/// Register the standard endpoint set on `server`:
///   /metrics    Prometheus text (serve + runtime + SLO + watchdog)
///   /healthz    "ok"/"degraded" with 200; "violating" with 503
///   /exemplars  Chrome-trace JSON of the current exemplar reservoirs
///   /slo        the slo_to_json document
/// `service` must outlive the server (the facade owns both and stops the
/// server first on shutdown).
void register_telemetry_endpoints(obs::ObsServer& server, TuningService& service);

}  // namespace mga::serve
