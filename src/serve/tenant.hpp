// Multi-tenant QoS at the admission gate (DESIGN.md §13).
//
// A `TenantPolicy` names the tenants a service admits and gives each a
// weight and an optional in-flight quota. Every shard enforces the policy
// at its own admission gate through a `TenantGovernor` — the DPCP-p idea of
// enforcing per-task shares at the contention point instead of by global
// coordination: no cross-shard state, no coordinator, and consistent-hash
// routing keeps a (machine, kernel)'s traffic on one shard anyway.
//
// Two independent controls, checked in order:
//
//   quota      hard cap on a tenant's *outstanding* requests (admitted but
//              not yet resolved). Checked first, always — a tenant cannot
//              buy past its quota with saved-up fairness credit.
//   fairness   weighted deficit round robin, active only under contention
//              (total outstanding >= fair_threshold). Credits are minted at
//              the *release* rate — each resolved request distributes one
//              admission credit across the tenants that still have work in
//              flight, proportional to weight — so under saturation each
//              tenant's admission rate converges to weight/total_weight of
//              the service rate, and an uncontested tenant inherits the
//              idle share (work conservation). `burst_credit` bounds how
//              much unused share a tenant can bank.
//
// Refused admissions resolve the ticket with a typed kRejected naming the
// tenant; both refusal kinds are counted per tenant in ServiceStats.
// Everything here is deterministic in arrival/release order, which is what
// makes trace replay reproducible (tests/test_scenario.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/probe.hpp"

namespace mga::serve {

struct TenantSpec {
  std::string name;
  /// Relative share of admissions under contention. Must be positive.
  double weight = 1.0;
  /// Max outstanding (admitted, unresolved) requests; 0 = unlimited.
  std::size_t quota = 0;
};

struct TenantPolicy {
  /// Empty = multi-tenant admission off (zero cost on the submit path).
  /// The facade prepends an implicit {"default", 1.0, no quota} tenant at
  /// index 0 unless one named "default" is already listed; requests that
  /// name no tenant (or an unknown one) are accounted there.
  std::vector<TenantSpec> tenants;
  /// Total outstanding at/above which the fairness clip engages (with
  /// hysteresis: once engaged it stays on until the backlog falls to half
  /// this). Below it only quotas apply — an uncontended service never
  /// rejects on share.
  std::size_t fair_threshold = 128;
  /// Admission credit a tenant can bank *per unit of weight* while
  /// under-using its share (a weight-2 tenant banks up to twice this); also
  /// the initial grant, so admission bursts ride through a cold start.
  /// Scaling the cap by weight keeps banked ratios weighted even when
  /// releases arrive in gulps large enough to fill every bank.
  double burst_credit = 64.0;
};

class TenantGovernor {
 public:
  enum class Verdict : std::uint8_t {
    kAdmit,
    kQuotaExceeded,  ///< Outstanding at quota.
    kOverShare,      ///< Contended and out of fairness credit.
  };

  /// Validates the policy: at least one tenant, positive weights.
  explicit TenantGovernor(TenantPolicy policy);

  /// Admission decision for one arrival. On kAdmit the tenant's outstanding
  /// count is charged; the caller must balance it with exactly one
  /// `release` when the request resolves (the shard wires this through
  /// TicketState's cleanup hook, so every resolution path pays it).
  [[nodiscard]] Verdict try_admit(std::uint32_t tenant);

  /// One admitted request resolved (served, rejected downstream, expired,
  /// cancelled — any typed outcome). Mints one fairness credit across the
  /// tenants still in flight, proportional to weight.
  void release(std::uint32_t tenant) noexcept;

  [[nodiscard]] std::size_t tenant_count() const noexcept { return states_.size(); }
  /// Spec of `tenant` (clamped to the default tenant when out of range).
  [[nodiscard]] const TenantSpec& spec(std::uint32_t tenant) const noexcept;
  [[nodiscard]] std::size_t outstanding(std::uint32_t tenant) const;
  [[nodiscard]] std::size_t total_outstanding() const;

 private:
  struct State {
    std::size_t outstanding = 0;
    double credit = 0.0;
    /// Share-rejected since its last admit: still competing, so it keeps
    /// receiving minted credit even with nothing in flight — without this a
    /// clipped tenant whose pipe drained would never earn its way back in.
    bool hungry = false;
  };

  [[nodiscard]] std::uint32_t clamp(std::uint32_t tenant) const noexcept {
    return tenant < states_.size() ? tenant : 0;
  }

  /// Bank cap for one tenant: `burst_credit x weight` (see TenantPolicy).
  [[nodiscard]] double cap(std::size_t tenant) const noexcept;

  TenantPolicy policy_;
  // One short critical section per arrival/release, O(#tenants). Probed so
  // a tenant-heavy deployment sees this gate in obs::contention_table().
  mutable obs::ProbedMutex mutex_{"shard.tenant_governor"};
  std::vector<State> states_;
  std::size_t total_ = 0;
  /// Contention latch: set when `total_` reaches `fair_threshold`, cleared
  /// only once it falls back to half of it. The hysteresis matters — at
  /// saturation the outstanding count oscillates exactly at the threshold
  /// (every release frees one slot the next arrival takes), and an
  /// unlatched >= test would hand out that slot credit-free every time,
  /// disabling weighted fairness precisely when it is needed.
  bool contended_ = false;
};

}  // namespace mga::serve
