#include "serve/feature_cache.hpp"

#include "ir/printer.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mga::serve {

std::uint64_t kernel_ir_hash(const corpus::KernelSpec& kernel) {
  const corpus::GeneratedKernel generated = corpus::generate(kernel);
  return util::fnv1a(ir::to_string(*generated.module));
}

FeatureCache::FeatureCache(FeatureCacheOptions options)
    : options_(options), shards_(options.shards) {
  MGA_CHECK_MSG(options.shards > 0, "FeatureCache: need at least one shard");
  MGA_CHECK_MSG(options.capacity_per_shard > 0, "FeatureCache: zero shard capacity");
}

std::shared_ptr<const FeatureCache::Entry> FeatureCache::get(const corpus::KernelSpec& kernel,
                                                             const core::MgaTuner& tuner,
                                                             std::uint64_t tuner_tag,
                                                             bool* was_hit) {
  const std::uint64_t key = util::hash_combine(kernel_ir_hash(kernel), tuner_tag);
  Shard& shard = shards_[key % shards_.size()];

  {
    const std::lock_guard<obs::ProbedMutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      shard.recency.splice(shard.recency.begin(), shard.recency, it->second.second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (was_hit != nullptr) *was_hit = true;
      return it->second.first;
    }
  }

  // Miss: compute outside the shard lock (a racing thread may compute the
  // same entry; extraction is deterministic, so whichever insert wins is
  // equivalent).
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (was_hit != nullptr) *was_hit = false;
  auto entry = std::make_shared<Entry>();
  entry->features = tuner.extract_features(kernel);

  const std::lock_guard<obs::ProbedMutex> lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    shard.recency.splice(shard.recency.begin(), shard.recency, it->second.second);
    return it->second.first;
  }
  shard.recency.push_front(key);
  shard.entries.emplace(key, std::make_pair(entry, shard.recency.begin()));
  if (shard.entries.size() > options_.capacity_per_shard) {
    const std::uint64_t victim = shard.recency.back();
    shard.recency.pop_back();
    shard.entries.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return entry;
}

hwsim::PapiCounters FeatureCache::counters_for(const Entry& entry, const core::MgaTuner& tuner,
                                               double input_bytes) {
  {
    const std::lock_guard<std::mutex> lock(entry.profile_mutex);
    for (const auto& [bytes, counters] : entry.profiles)
      if (bytes == input_bytes) {
        profile_memo_hits_.fetch_add(1, std::memory_order_relaxed);
        return counters;
      }
  }
  const hwsim::PapiCounters counters = tuner.profile_counters(entry.features.workload, input_bytes);
  profiles_run_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(entry.profile_mutex);
  if (entry.profiles.size() < options_.profile_memo_capacity)
    entry.profiles.emplace_back(input_bytes, counters);
  return counters;
}

FeatureCacheStats FeatureCache::stats() const {
  FeatureCacheStats stats;
  stats.hits = hits_.load();
  stats.misses = misses_.load();
  stats.evictions = evictions_.load();
  stats.profile_memo_hits = profile_memo_hits_.load();
  stats.profiles_run = profiles_run_.load();
  for (const Shard& shard : shards_) {
    const std::lock_guard<obs::ProbedMutex> lock(shard.mutex);
    stats.entries += shard.entries.size();
  }
  return stats;
}

}  // namespace mga::serve
