// Service telemetry: lock-light counters updated on the request hot path and
// a snapshot/rendering pair for operators (bench and example binaries print
// the same table). v2 added per-tier QoS accounting and the queue-wait vs.
// compute latency breakdown; v6 replaces the bounded raw-sample percentile
// windows with mga::obs log-scale histograms. Histograms merge *exactly*
// across shards (bucket counts add), so the facade's pooled p50/p95/p99 no
// longer under-weights a busy shard whose window wrapped — and the snapshot
// itself carries the histograms, so `aggregate_snapshots` needs no side
// channel of raw samples. Under sharded serving each ServeShard owns one
// ServiceStats; the facade merges them with `aggregate_snapshots` (counters
// summed, means re-weighted, histograms merged, percentiles re-derived) and
// attaches the per-shard snapshots as `ServiceStatsSnapshot::shards`.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/slo.hpp"
#include "serve/ticket.hpp"
#include "util/table.hpp"

namespace mga::serve {

/// Counters of the sharded feature cache (see feature_cache.hpp). `hits` /
/// `misses` count static-feature lookups; the profile pair counts the
/// per-(kernel, input) counter memo that replaces repeat profiling runs.
struct FeatureCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t profile_memo_hits = 0;
  std::uint64_t profiles_run = 0;
  std::size_t entries = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Per-tier QoS accounting. `admitted` counts requests that entered the
/// lane; the error counters break down the tier's *QoS* failures by cause
/// (rejected = admission refusal or shutdown, shed = displaced by a newer
/// request, expired = deadline, cancelled = caller). Machine-resolution and
/// artifact-load failures are not tier-attributed: they appear only in the
/// global `failed`, which therefore can exceed the tier sums. Percentiles
/// are derived from the tier's full-history histogram.
struct TierStatsSnapshot {
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  /// Mergeable latency distribution the percentiles were derived from.
  obs::LatencyHistogram latency_hist;
};

/// Per-tenant QoS accounting (DESIGN.md §13); populated only when the
/// service runs with a TenantPolicy. `submitted` counts arrivals billed to
/// the tenant; `rejected_quota` / `rejected_share` are the governor's two
/// refusal kinds; `failed` is every other non-completion outcome after the
/// gate (lane-full, shed, expired, cancelled, load error, shutdown), so
/// submitted = admitted + rejected_* and admitted = completed + failed once
/// the pipe drains.
struct TenantStatsSnapshot {
  std::string name;
  double weight = 1.0;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t rejected_share = 0;
  std::uint64_t failed = 0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  /// Mergeable latency distribution the percentiles were derived from.
  obs::LatencyHistogram latency_hist;
};

/// Pipelined-engine occupancy (all zero when the shard runs the legacy
/// one-batch-per-worker loop). Busy times are per-stage wall time actually
/// spent executing batches; `steals` counts stage executions a worker
/// claimed from a ring that is not its home stage.
struct PipelineStatsSnapshot {
  std::uint64_t dispatched = 0;  // batches sealed and handed to the pipeline
  std::uint64_t steals = 0;
  double extract_busy_us = 0.0;
  double forward_busy_us = 0.0;
  double publish_busy_us = 0.0;
};

/// Pipeline stage index for `ServiceStats::record_stage_busy`.
inline constexpr std::size_t kPipelineExtract = 0;
inline constexpr std::size_t kPipelineForward = 1;
inline constexpr std::size_t kPipelinePublish = 2;
inline constexpr std::size_t kNumPipelineStages = 3;

/// One coherent view of the service counters (plus the cache block when the
/// caller provides it — TuningService::stats_snapshot always does).
struct ServiceStatsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;  // every error outcome, across all causes
  /// Split-path accounting during a canary rollout: completions served by a
  /// provisionally staged candidate vs. by the incumbent while an
  /// assignment was active on the shard. Both stay 0 outside canary phases
  /// (`completed - canary_served` is NOT the incumbent arm — most traffic
  /// never overlaps a rollout).
  std::uint64_t canary_served = 0;
  std::uint64_t canary_incumbent_served = 0;
  /// Forward-stage path split, counted per grouped forward (batch), not per
  /// request: batches executed through the compiled runtime plan vs. through
  /// the interpreter. Interpreted forwards while `compiled_runtime` is on
  /// mean the resolved generation had no plan (compile failed) or the plan
  /// threw at execute time — the silent fallback made visible.
  std::uint64_t forwards_compiled = 0;
  std::uint64_t forwards_interpreted = 0;
  /// Plan shape-bucket layout cache: hits reuse a planned arena layout,
  /// misses planned one (first sight of a batch-size bucket).
  std::uint64_t plan_layout_hits = 0;
  std::uint64_t plan_layout_misses = 0;
  std::uint64_t batches = 0;
  /// Requests served across all batches (`mean_batch`'s numerator, carried
  /// so cross-shard aggregation sums exact integers).
  std::uint64_t batched_requests = 0;
  std::uint64_t max_batch = 0;
  double mean_batch = 0.0;
  double latency_mean_us = 0.0;  // over all completions
  double latency_p50_us = 0.0;   // histogram-derived, full history
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_max_us = 0.0;   // exact, over all completions
  /// Mean split of completion latency: queued (admission + lane + linger)
  /// vs. inside the grouped forward.
  double queue_wait_mean_us = 0.0;
  double compute_mean_us = 0.0;
  /// Mean split of the compute side by stage: feature/cache resolution vs.
  /// the batched encode+predict+decode. (compute - extract - forward is the
  /// per-member profiling/memoization slice.)
  double extract_mean_us = 0.0;
  double forward_mean_us = 0.0;
  /// Mergeable end-to-end latency distribution behind the percentiles.
  obs::LatencyHistogram latency_hist;
  /// Staged-engine occupancy; all-zero under the legacy worker loop.
  PipelineStatsSnapshot pipeline;
  std::array<TierStatsSnapshot, kNumTiers> tiers{};
  /// Per-tenant accounting, in TenantPolicy order; empty when the service
  /// runs without one (the extra table rows are gated on non-empty).
  std::vector<TenantStatsSnapshot> tenants;
  FeatureCacheStats cache;
  /// Telemetry-plane summary, stamped by the TuningService facade (zero /
  /// kOk on a raw ServiceStats::snapshot): service uptime, the combined
  /// health verdict (worst of SLO windows and the stall watchdog), and the
  /// SLO long-window totals behind the compliance row. `uptime_seconds > 0`
  /// is the "telemetry plane present" marker that gates the extra table
  /// rows, so hand-built snapshots render exactly as before.
  double uptime_seconds = 0.0;
  obs::HealthState health = obs::HealthState::kOk;
  std::uint64_t slo_window_total = 0;
  std::uint64_t slo_window_bad = 0;
  /// Per-shard breakdown when the snapshot aggregates a sharded service:
  /// one entry per ServeShard, in shard-index order, each with an empty
  /// `shards` of its own. Empty on a per-shard snapshot.
  std::vector<ServiceStatsSnapshot> shards;
};

class ServiceStats {
 public:
  void record_submit() noexcept { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void record_failed(std::uint64_t n = 1) noexcept {
    failed_.fetch_add(n, std::memory_order_relaxed);
  }

  void record_admitted(Priority tier) noexcept { bump(tier, &Tier::admitted); }
  /// Each of these also counts toward the global `failed` total.
  void record_rejected(Priority tier) noexcept { bump(tier, &Tier::rejected); record_failed(); }
  void record_shed(Priority tier) noexcept { bump(tier, &Tier::shed); record_failed(); }
  void record_expired(Priority tier) noexcept { bump(tier, &Tier::expired); record_failed(); }
  void record_cancelled(Priority tier) noexcept { bump(tier, &Tier::cancelled); record_failed(); }

  void record_batch(std::size_t size) noexcept;

  /// Split-path canary accounting: one completion served by the staged
  /// candidate / by the incumbent on a route an active assignment covers.
  void record_canary_served() noexcept {
    canary_served_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_canary_incumbent() noexcept {
    canary_incumbent_served_.fetch_add(1, std::memory_order_relaxed);
  }

  /// One grouped forward executed: which path served it and, when compiled,
  /// whether the plan's shape-bucket layout was already cached.
  void record_forward_path(bool compiled, bool layout_hit) noexcept {
    if (compiled) {
      forwards_compiled_.fetch_add(1, std::memory_order_relaxed);
      (layout_hit ? plan_layout_hits_ : plan_layout_misses_)
          .fetch_add(1, std::memory_order_relaxed);
    } else {
      forwards_interpreted_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Completion, end-to-end latency (submit -> outcome resolved), its
  /// queue-wait / compute split, and the compute side's extract / forward
  /// stage split, attributed to the request's tier.
  void record_completion(double latency_us, double queue_wait_us, double compute_us,
                         double extract_us, double forward_us, Priority tier);

  /// Pipelined-engine occupancy: one sealed batch handed to the pipeline /
  /// one stage execution claimed off a non-home ring / `busy_us` spent
  /// executing pipeline stage `stage` (kPipelineExtract..kPipelinePublish).
  void record_dispatched() noexcept {
    pipeline_dispatched_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_steal() noexcept { pipeline_steals_.fetch_add(1, std::memory_order_relaxed); }
  void record_stage_busy(std::size_t stage, double busy_us) noexcept {
    stage_busy_ns_[stage].fetch_add(static_cast<std::uint64_t>(busy_us * 1000.0),
                                    std::memory_order_relaxed);
  }

  /// Size the per-tenant slots (name, weight per tenant, TenantPolicy
  /// order). Must be called before any thread records — the shard ctor does
  /// it — and at most once. Without it every record_tenant_* is a no-op and
  /// snapshots carry no tenant block, so untenanted services pay nothing.
  void configure_tenants(const std::vector<std::pair<std::string, double>>& tenants);

  /// Per-tenant recorders; all no-op when unconfigured or out of range.
  void record_tenant_submitted(std::uint32_t tenant) noexcept {
    if (tenant < tenants_.size())
      tenants_[tenant]->submitted.fetch_add(1, std::memory_order_relaxed);
  }
  void record_tenant_admitted(std::uint32_t tenant) noexcept {
    if (tenant < tenants_.size())
      tenants_[tenant]->admitted.fetch_add(1, std::memory_order_relaxed);
  }
  void record_tenant_rejected(std::uint32_t tenant, bool quota) noexcept {
    if (tenant < tenants_.size())
      (quota ? tenants_[tenant]->rejected_quota : tenants_[tenant]->rejected_share)
          .fetch_add(1, std::memory_order_relaxed);
  }
  void record_tenant_failed(std::uint32_t tenant) noexcept {
    if (tenant < tenants_.size())
      tenants_[tenant]->failed.fetch_add(1, std::memory_order_relaxed);
  }
  void record_tenant_completed(std::uint32_t tenant, double latency_us);

  [[nodiscard]] ServiceStatsSnapshot snapshot(const FeatureCacheStats& cache = {}) const;

 private:
  struct Tier {
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> expired{0};
    std::atomic<std::uint64_t> cancelled{0};
    // Guarded by latency_mutex_.
    obs::LatencyHistogram latency_hist;
  };

  /// One tenant's counters. Heap-allocated (atomics are not movable) and
  /// sized once by configure_tenants before any recorder runs.
  struct TenantSlot {
    std::string name;
    double weight = 1.0;
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> rejected_quota{0};
    std::atomic<std::uint64_t> rejected_share{0};
    std::atomic<std::uint64_t> failed{0};
    // Guarded by latency_mutex_.
    obs::LatencyHistogram latency_hist;
  };

  void bump(Priority tier, std::atomic<std::uint64_t> Tier::* counter) noexcept {
    (tiers_[static_cast<std::size_t>(tier)].*counter).fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> canary_served_{0};
  std::atomic<std::uint64_t> canary_incumbent_served_{0};
  std::atomic<std::uint64_t> forwards_compiled_{0};
  std::atomic<std::uint64_t> forwards_interpreted_{0};
  std::atomic<std::uint64_t> plan_layout_hits_{0};
  std::atomic<std::uint64_t> plan_layout_misses_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  std::atomic<std::uint64_t> pipeline_dispatched_{0};
  std::atomic<std::uint64_t> pipeline_steals_{0};
  std::array<std::atomic<std::uint64_t>, kNumPipelineStages> stage_busy_ns_{};
  mutable std::mutex latency_mutex_;
  obs::LatencyHistogram latency_hist_;  // guarded by latency_mutex_
  double latency_sum_ = 0.0;
  double queue_wait_sum_ = 0.0;
  double compute_sum_ = 0.0;
  double extract_sum_ = 0.0;
  double forward_sum_ = 0.0;
  std::array<Tier, kNumTiers> tiers_;
  /// Set once before threads start, then never resized (recorders index it
  /// lock-free); empty on an untenanted service.
  std::vector<std::unique_ptr<TenantSlot>> tenants_;
};

/// Merge per-shard snapshots into one service-wide view: counters summed,
/// means re-weighted by each shard's completion count, max-like fields
/// maxed, and percentiles re-derived from the exactly-merged histograms —
/// every completion weighs equally regardless of how lopsided the per-shard
/// load was. The inputs are attached verbatim as `result.shards`.
[[nodiscard]] ServiceStatsSnapshot aggregate_snapshots(std::vector<ServiceStatsSnapshot> shards);

/// Render a snapshot as the operator-facing metric/value table. A multi-shard
/// snapshot (`shards.size() > 1`) gains a per-shard breakdown section.
[[nodiscard]] util::Table stats_table(const ServiceStatsSnapshot& snapshot);

}  // namespace mga::serve
