// Service telemetry: lock-light counters updated on the request hot path and
// a snapshot/rendering pair for operators (bench and example binaries print
// the same table). v2 adds per-tier QoS accounting (admitted / rejected /
// shed / expired / cancelled, per-tier latency percentiles) and the
// queue-wait vs. compute latency breakdown that makes linger tuning
// observable. Under sharded serving each ServeShard owns one ServiceStats;
// the facade merges them with `aggregate_snapshots` (counters summed, means
// re-weighted, percentiles recomputed over the shards' pooled raw windows)
// and attaches the per-shard snapshots as `ServiceStatsSnapshot::shards`.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "serve/ticket.hpp"
#include "util/table.hpp"

namespace mga::serve {

/// Counters of the sharded feature cache (see feature_cache.hpp). `hits` /
/// `misses` count static-feature lookups; the profile pair counts the
/// per-(kernel, input) counter memo that replaces repeat profiling runs.
struct FeatureCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t profile_memo_hits = 0;
  std::uint64_t profiles_run = 0;
  std::size_t entries = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Per-tier QoS accounting. `admitted` counts requests that entered the
/// lane; the error counters break down the tier's *QoS* failures by cause
/// (rejected = admission refusal or shutdown, shed = displaced by a newer
/// request, expired = deadline, cancelled = caller). Machine-resolution and
/// artifact-load failures are not tier-attributed: they appear only in the
/// global `failed`, which therefore can exceed the tier sums. Percentiles
/// cover the tier's recent completions.
struct TierStatsSnapshot {
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
};

/// One coherent view of the service counters (plus the cache block when the
/// caller provides it — TuningService::stats_snapshot always does).
struct ServiceStatsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;  // every error outcome, across all causes
  /// Split-path accounting during a canary rollout: completions served by a
  /// provisionally staged candidate vs. by the incumbent while an
  /// assignment was active on the shard. Both stay 0 outside canary phases
  /// (`completed - canary_served` is NOT the incumbent arm — most traffic
  /// never overlaps a rollout).
  std::uint64_t canary_served = 0;
  std::uint64_t canary_incumbent_served = 0;
  std::uint64_t batches = 0;
  /// Requests served across all batches (`mean_batch`'s numerator, carried
  /// so cross-shard aggregation sums exact integers).
  std::uint64_t batched_requests = 0;
  std::uint64_t max_batch = 0;
  double mean_batch = 0.0;
  double latency_mean_us = 0.0;  // over all completions
  double latency_p50_us = 0.0;   // percentiles over the recent window
  double latency_p95_us = 0.0;
  double latency_max_us = 0.0;   // over all completions
  /// Mean split of completion latency: queued (admission + lane + linger)
  /// vs. inside the grouped forward.
  double queue_wait_mean_us = 0.0;
  double compute_mean_us = 0.0;
  std::array<TierStatsSnapshot, kNumTiers> tiers{};
  FeatureCacheStats cache;
  /// Per-shard breakdown when the snapshot aggregates a sharded service:
  /// one entry per ServeShard, in shard-index order, each with an empty
  /// `shards` of its own. Empty on a per-shard snapshot.
  std::vector<ServiceStatsSnapshot> shards;
};

/// Raw latency samples behind the percentile windows (global + per tier),
/// exported so a facade can pool several shards' samples and compute exact
/// aggregate percentiles instead of averaging per-shard quantiles.
struct LatencyWindows {
  std::vector<double> global;
  std::array<std::vector<double>, kNumTiers> tiers;
};

class ServiceStats {
 public:
  void record_submit() noexcept { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void record_failed(std::uint64_t n = 1) noexcept {
    failed_.fetch_add(n, std::memory_order_relaxed);
  }

  void record_admitted(Priority tier) noexcept { bump(tier, &Tier::admitted); }
  /// Each of these also counts toward the global `failed` total.
  void record_rejected(Priority tier) noexcept { bump(tier, &Tier::rejected); record_failed(); }
  void record_shed(Priority tier) noexcept { bump(tier, &Tier::shed); record_failed(); }
  void record_expired(Priority tier) noexcept { bump(tier, &Tier::expired); record_failed(); }
  void record_cancelled(Priority tier) noexcept { bump(tier, &Tier::cancelled); record_failed(); }

  void record_batch(std::size_t size) noexcept;

  /// Split-path canary accounting: one completion served by the staged
  /// candidate / by the incumbent on a route an active assignment covers.
  void record_canary_served() noexcept {
    canary_served_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_canary_incumbent() noexcept {
    canary_incumbent_served_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Completion, end-to-end latency (submit -> outcome resolved) and its
  /// queue-wait / compute split, attributed to the request's tier.
  void record_completion(double latency_us, double queue_wait_us, double compute_us,
                         Priority tier);

  [[nodiscard]] ServiceStatsSnapshot snapshot(const FeatureCacheStats& cache = {}) const;

  /// Copies of the bounded latency rings, for cross-shard aggregation.
  [[nodiscard]] LatencyWindows latency_windows() const;

 private:
  /// Latency samples kept for percentiles: a bounded ring of the most
  /// recent completions, so a long-lived service neither grows without
  /// bound nor pays more than an O(window log window) sort per snapshot.
  static constexpr std::size_t kLatencyWindow = 16384;
  static constexpr std::size_t kTierLatencyWindow = 4096;

  struct Tier {
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> expired{0};
    std::atomic<std::uint64_t> cancelled{0};
    // Guarded by latency_mutex_.
    std::vector<double> latency_window;
    std::size_t latency_next = 0;
  };

  void bump(Priority tier, std::atomic<std::uint64_t> Tier::* counter) noexcept {
    (tiers_[static_cast<std::size_t>(tier)].*counter).fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> canary_served_{0};
  std::atomic<std::uint64_t> canary_incumbent_served_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  mutable std::mutex latency_mutex_;
  std::vector<double> latency_window_;
  std::size_t latency_next_ = 0;
  double latency_sum_ = 0.0;
  double latency_max_ = 0.0;
  double queue_wait_sum_ = 0.0;
  double compute_sum_ = 0.0;
  std::array<Tier, kNumTiers> tiers_;
};

/// Merge per-shard snapshots into one service-wide view: counters summed,
/// means re-weighted by each shard's completion count, max-like fields
/// maxed, and percentiles recomputed exactly over the pooled `windows`
/// samples (windows[i] must come from the same ServiceStats as shards[i]).
/// The inputs are attached verbatim as `result.shards`.
[[nodiscard]] ServiceStatsSnapshot aggregate_snapshots(
    std::vector<ServiceStatsSnapshot> shards, const std::vector<LatencyWindows>& windows);

/// Render a snapshot as the operator-facing metric/value table. A multi-shard
/// snapshot (`shards.size() > 1`) gains a per-shard breakdown section.
[[nodiscard]] util::Table stats_table(const ServiceStatsSnapshot& snapshot);

}  // namespace mga::serve
