// Service telemetry: lock-light counters updated on the request hot path and
// a snapshot/rendering pair for operators (bench and example binaries print
// the same table).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/table.hpp"

namespace mga::serve {

/// Counters of the sharded feature cache (see feature_cache.hpp). `hits` /
/// `misses` count static-feature lookups; the profile pair counts the
/// per-(kernel, input) counter memo that replaces repeat profiling runs.
struct FeatureCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t profile_memo_hits = 0;
  std::uint64_t profiles_run = 0;
  std::size_t entries = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// One coherent view of the service counters (plus the cache block when the
/// caller provides it — TuningService::stats_snapshot always does).
struct ServiceStatsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch = 0;
  double mean_batch = 0.0;
  double latency_mean_us = 0.0;  // over all completions
  double latency_p50_us = 0.0;   // percentiles over the recent window
  double latency_p95_us = 0.0;
  double latency_max_us = 0.0;   // over all completions
  FeatureCacheStats cache;
};

class ServiceStats {
 public:
  void record_submit() noexcept { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void record_failed(std::uint64_t n = 1) noexcept {
    failed_.fetch_add(n, std::memory_order_relaxed);
  }

  void record_batch(std::size_t size) noexcept;

  /// Completion + end-to-end latency (submit -> promise fulfilled).
  void record_completion(double latency_us);

  [[nodiscard]] ServiceStatsSnapshot snapshot(const FeatureCacheStats& cache = {}) const;

 private:
  /// Latency samples kept for percentiles: a bounded ring of the most
  /// recent completions, so a long-lived service neither grows without
  /// bound nor pays more than an O(window log window) sort per snapshot.
  static constexpr std::size_t kLatencyWindow = 16384;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  mutable std::mutex latency_mutex_;
  std::vector<double> latency_window_;
  std::size_t latency_next_ = 0;
  double latency_sum_ = 0.0;
  double latency_max_ = 0.0;
};

/// Render a snapshot as the operator-facing metric/value table.
[[nodiscard]] util::Table stats_table(const ServiceStatsSnapshot& snapshot);

}  // namespace mga::serve
