#include "serve/telemetry.hpp"

#include <cstddef>
#include <iomanip>
#include <sstream>

#include "obs/trace.hpp"
#include "serve/service.hpp"

namespace mga::serve {

namespace {

std::string tier_name(std::size_t tier) {
  return to_string(static_cast<Priority>(tier));
}

std::string route_hex(std::uint64_t route) {
  std::ostringstream os;
  os << "0x" << std::hex << route;
  return os.str();
}

void append_json_string(std::ostringstream& os, const std::string& text) {
  os << '"';
  for (const char c : text) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

void append_window_json(std::ostringstream& os, const obs::SloTracker::WindowCounts& window) {
  os << "{\"total\":" << window.total << ",\"errors\":" << window.errors
     << ",\"latency_bad\":" << window.latency_bad << "}";
}

}  // namespace

void export_service_metrics(obs::MetricsRegistry& registry,
                            const ServiceStatsSnapshot& snapshot) {
  registry.gauge("mga_serve_uptime_seconds", "Seconds since the service started.")
      .set(snapshot.uptime_seconds);
  registry
      .gauge("mga_serve_health",
             "Combined service health (0=ok, 1=degraded, 2=violating): worst of the SLO "
             "windows and the stall watchdog.")
      .set(static_cast<double>(snapshot.health));

  // Per-shard counters come from the breakdown the facade attaches; a
  // hand-built snapshot without one exports itself as shard 0, so the
  // per-shard families are never empty.
  const std::vector<ServiceStatsSnapshot>* shards = &snapshot.shards;
  std::vector<ServiceStatsSnapshot> self;
  if (shards->empty()) {
    self.push_back(snapshot);
    self.back().shards.clear();
    shards = &self;
  }
  for (std::size_t i = 0; i < shards->size(); ++i) {
    const ServiceStatsSnapshot& shard = (*shards)[i];
    const obs::Labels labels{{"shard", std::to_string(i)}};
    const auto with = [&](const char* key, const std::string& value) {
      obs::Labels out = labels;
      out.emplace_back(key, value);
      return out;
    };
    auto& requests = registry.counter(
        "mga_serve_requests_total", with("outcome", "submitted"),
        "Requests by terminal accounting outcome, per shard.");
    requests.add(shard.submitted);
    registry.counter("mga_serve_requests_total", with("outcome", "completed"))
        .add(shard.completed);
    registry.counter("mga_serve_requests_total", with("outcome", "failed")).add(shard.failed);
    registry
        .counter("mga_serve_batches_total", labels,
                 "Grouped forwards executed (batches), per shard.")
        .add(shard.batches);
    registry
        .counter("mga_serve_pipeline_batches_total", labels,
                 "Batches sealed and dispatched to the staged pipeline, per shard.")
        .add(shard.pipeline.dispatched);
    registry
        .counter("mga_serve_pipeline_steals_total", labels,
                 "Pipeline stage executions claimed off a non-home ring, per shard.")
        .add(shard.pipeline.steals);
    registry.counter("mga_serve_cache_events_total", with("event", "hit"),
                     "Feature-cache events, per shard.")
        .add(shard.cache.hits);
    registry.counter("mga_serve_cache_events_total", with("event", "miss"))
        .add(shard.cache.misses);
    registry.counter("mga_serve_cache_events_total", with("event", "eviction"))
        .add(shard.cache.evictions);
    registry
        .gauge("mga_serve_cache_entries", labels, "Resident feature-cache entries, per shard.")
        .set(static_cast<double>(shard.cache.entries));
    registry
        .histogram("mga_serve_latency_us", labels,
                   "End-to-end completion latency in microseconds, per shard.")
        .merge(shard.latency_hist);
  }

  for (std::size_t t = 0; t < kNumTiers; ++t) {
    const TierStatsSnapshot& tier = snapshot.tiers[t];
    const obs::Labels labels{{"tier", tier_name(t)}};
    const auto with = [&](const char* value) {
      obs::Labels out = labels;
      out.emplace_back("outcome", value);
      return out;
    };
    registry.counter("mga_serve_tier_requests_total", with("admitted"),
                     "Per-tier QoS accounting by outcome.")
        .add(tier.admitted);
    registry.counter("mga_serve_tier_requests_total", with("completed")).add(tier.completed);
    registry.counter("mga_serve_tier_requests_total", with("rejected")).add(tier.rejected);
    registry.counter("mga_serve_tier_requests_total", with("shed")).add(tier.shed);
    registry.counter("mga_serve_tier_requests_total", with("expired")).add(tier.expired);
    registry.counter("mga_serve_tier_requests_total", with("cancelled")).add(tier.cancelled);
    registry
        .histogram("mga_serve_tier_latency_us", labels,
                   "End-to-end completion latency in microseconds, per tier.")
        .merge(tier.latency_hist);
  }

  for (const TenantStatsSnapshot& tenant : snapshot.tenants) {
    const obs::Labels labels{{"tenant", tenant.name}};
    const auto with = [&](const char* value) {
      obs::Labels out = labels;
      out.emplace_back("outcome", value);
      return out;
    };
    registry.counter("mga_serve_tenant_requests_total", with("submitted"),
                     "Per-tenant QoS accounting by outcome (DESIGN.md §13).")
        .add(tenant.submitted);
    registry.counter("mga_serve_tenant_requests_total", with("admitted")).add(tenant.admitted);
    registry.counter("mga_serve_tenant_requests_total", with("completed"))
        .add(tenant.completed);
    registry.counter("mga_serve_tenant_requests_total", with("rejected_quota"))
        .add(tenant.rejected_quota);
    registry.counter("mga_serve_tenant_requests_total", with("rejected_share"))
        .add(tenant.rejected_share);
    registry.counter("mga_serve_tenant_requests_total", with("failed")).add(tenant.failed);
    registry
        .gauge("mga_serve_tenant_weight", labels,
               "Configured fair-share weight per tenant.")
        .set(tenant.weight);
    registry
        .histogram("mga_serve_tenant_latency_us", labels,
                   "End-to-end completion latency in microseconds, per tenant.")
        .merge(tenant.latency_hist);
  }

  registry.counter("mga_serve_forwards_total", obs::Labels{{"path", "compiled"}},
                   "Grouped forwards by execution path.")
      .add(snapshot.forwards_compiled);
  registry.counter("mga_serve_forwards_total", obs::Labels{{"path", "interpreted"}})
      .add(snapshot.forwards_interpreted);
}

void export_slo_metrics(obs::MetricsRegistry& registry,
                        const obs::SloTracker::Snapshot& service,
                        const std::vector<obs::SloTracker::Snapshot>& shards) {
  registry
      .gauge("mga_slo_health", obs::Labels{{"scope", "service"}},
             "SLO verdict (0=ok, 1=degraded, 2=violating), service-wide and per shard.")
      .set(static_cast<double>(service.state));
  for (std::size_t i = 0; i < shards.size(); ++i) {
    registry
        .gauge("mga_slo_health",
               obs::Labels{{"scope", "shard"}, {"shard", std::to_string(i)}})
        .set(static_cast<double>(shards[i].state));
  }
  for (std::size_t t = 0; t < service.tiers.size(); ++t) {
    const obs::SloTracker::TierVerdict& tier = service.tiers[t];
    const obs::Labels labels{{"tier", tier_name(t)}};
    const auto with = [&](const char* key, const char* value) {
      obs::Labels out = labels;
      out.emplace_back(key, value);
      return out;
    };
    registry
        .gauge("mga_slo_burn_rate", with("window", "short"),
               "Error-budget burn rate per tier and window (1.0 = burning exactly the "
               "budget).")
        .set(tier.short_burn);
    registry.gauge("mga_slo_burn_rate", with("window", "long")).set(tier.long_burn);
    registry
        .gauge("mga_slo_window_p95_us", labels,
               "Long-window p95 completion latency in microseconds, per tier.")
        .set(tier.p95_us);
    registry
        .gauge("mga_slo_tier_health", labels,
               "Per-tier SLO verdict (0=ok, 1=degraded, 2=violating).")
        .set(static_cast<double>(tier.state));
    registry.counter("mga_slo_window_requests_total", with("class", "total"),
                     "Long-window event counts per tier.")
        .add(tier.long_window.total);
    registry.counter("mga_slo_window_requests_total", with("class", "errors"))
        .add(tier.long_window.errors);
    registry.counter("mga_slo_window_requests_total", with("class", "latency_bad"))
        .add(tier.long_window.latency_bad);
  }
  for (const obs::SloTracker::RouteVerdict& route : service.routes) {
    const obs::Labels labels{{"route", route_hex(route.route)}};
    const auto with = [&](const char* value) {
      obs::Labels out = labels;
      out.emplace_back("class", value);
      return out;
    };
    registry.counter("mga_slo_route_requests_total", with("total"),
                     "Tumbling-window event counts for the worst routes.")
        .add(route.total);
    registry.counter("mga_slo_route_requests_total", with("bad")).add(route.bad);
  }
}

void export_watchdog_metrics(obs::MetricsRegistry& registry,
                             const obs::StallWatchdog::Snapshot& snapshot) {
  registry
      .gauge("mga_watchdog_health",
             "Stall-watchdog verdict (0=ok, 2=violating while any probe is stalled).")
      .set(static_cast<double>(snapshot.state));
  for (const obs::StallWatchdog::ProbeVerdict& probe : snapshot.probes) {
    const obs::Labels labels{{"probe", probe.name}};
    registry
        .counter("mga_watchdog_beats_total", labels,
                 "Progress heartbeats retired per watched stage.")
        .add(probe.beats);
    registry
        .gauge("mga_watchdog_pending", labels, "Work visibly waiting per watched stage.")
        .set(static_cast<double>(probe.pending));
    registry
        .gauge("mga_watchdog_stage_health", labels,
               "Per-stage liveness (0=idle, 1=active, 2=suspended, 3=stalled).")
        .set(static_cast<double>(probe.health));
    registry
        .gauge("mga_watchdog_since_progress_seconds", labels,
               "Seconds since the stage last made visible progress (or was legitimately "
               "idle/suspended).")
        .set(probe.since_progress_s);
  }
}

std::string slo_to_json(const obs::SloTracker::Snapshot& service,
                        const std::vector<obs::SloTracker::Snapshot>& shards,
                        const obs::StallWatchdog::Snapshot& watchdog,
                        double uptime_seconds) {
  std::ostringstream os;
  os << "{\"health\":";
  append_json_string(os, obs::to_string(obs::worse(service.state, watchdog.state)));
  os << ",\"slo_state\":";
  append_json_string(os, obs::to_string(service.state));
  os << ",\"uptime_seconds\":" << uptime_seconds;
  os << ",\"compliance\":" << service.long_window_compliance();
  os << ",\"tiers\":[";
  for (std::size_t t = 0; t < service.tiers.size(); ++t) {
    const obs::SloTracker::TierVerdict& tier = service.tiers[t];
    if (t > 0) os << ',';
    os << "{\"tier\":";
    append_json_string(os, tier_name(t));
    os << ",\"state\":";
    append_json_string(os, obs::to_string(tier.state));
    os << ",\"objective_p95_us\":" << tier.objective.latency_p95_us
       << ",\"error_budget\":" << tier.objective.error_budget
       << ",\"p95_us\":" << tier.p95_us << ",\"short_burn\":" << tier.short_burn
       << ",\"long_burn\":" << tier.long_burn << ",\"short_window\":";
    append_window_json(os, tier.short_window);
    os << ",\"long_window\":";
    append_window_json(os, tier.long_window);
    os << "}";
  }
  os << "],\"routes\":[";
  for (std::size_t i = 0; i < service.routes.size(); ++i) {
    const obs::SloTracker::RouteVerdict& route = service.routes[i];
    if (i > 0) os << ',';
    os << "{\"route\":";
    append_json_string(os, route_hex(route.route));
    os << ",\"total\":" << route.total << ",\"bad\":" << route.bad
       << ",\"bad_fraction\":" << route.bad_fraction() << "}";
  }
  os << "],\"shards\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"shard\":" << i << ",\"state\":";
    append_json_string(os, obs::to_string(shards[i].state));
    os << "}";
  }
  os << "],\"watchdog\":{\"state\":";
  append_json_string(os, obs::to_string(watchdog.state));
  os << ",\"probes\":[";
  for (std::size_t i = 0; i < watchdog.probes.size(); ++i) {
    const obs::StallWatchdog::ProbeVerdict& probe = watchdog.probes[i];
    if (i > 0) os << ',';
    os << "{\"name\":";
    append_json_string(os, probe.name);
    os << ",\"health\":";
    append_json_string(os, obs::to_string(probe.health));
    os << ",\"beats\":" << probe.beats << ",\"pending\":" << probe.pending
       << ",\"since_progress_s\":" << probe.since_progress_s << "}";
  }
  os << "]}}";
  return os.str();
}

void register_telemetry_endpoints(obs::ObsServer& server, TuningService& service) {
  server.handle("/metrics", [&service](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = service.metrics_prometheus();
    return response;
  });
  server.handle("/healthz", [&service](const obs::HttpRequest&) {
    obs::HttpResponse response;
    const obs::HealthState health = service.health();
    // Degraded still answers 200: it is an early-warning state, not an
    // outage — only a violating service should fail a load-balancer check.
    response.status = health == obs::HealthState::kViolating ? 503 : 200;
    response.body = std::string(obs::to_string(health)) + "\n";
    return response;
  });
  server.handle("/slo", [&service](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.content_type = "application/json; charset=utf-8";
    obs::StallWatchdog::Snapshot watchdog;
    if (service.watchdog() != nullptr) watchdog = service.watchdog()->snapshot();
    response.body = slo_to_json(service.slo_snapshot(), service.shard_slo_snapshots(),
                                watchdog, service.uptime_seconds());
    return response;
  });
  server.handle("/exemplars", [&service](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.content_type = "application/json; charset=utf-8";
    std::ostringstream os;
    obs::write_chrome_trace(
        os, {obs::TraceSection{"exemplar",
                               obs::exemplar_trace_events(service.exemplar_snapshot())}});
    response.body = os.str();
    return response;
  });
}

}  // namespace mga::serve
