#include "serve/retrain/drift_monitor.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mga::serve::retrain {

DriftMonitor::DriftMonitor(DriftMonitorOptions options) : options_(options) {
  MGA_CHECK_MSG(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0,
                "DriftMonitor: ewma_alpha must be in (0, 1]");
  MGA_CHECK_MSG(options_.min_kernel_observations > 0,
                "DriftMonitor: min_kernel_observations must be positive");
}

std::optional<DriftTrigger> DriftMonitor::observe(const std::string& machine,
                                                  std::uint64_t route_key, double regret) {
  const std::lock_guard<std::mutex> lock(mutex_);
  MachineState& state = machines_[machine];
  KernelState& kernel = state.kernels[route_key];
  kernel.ewma = kernel.count == 0
                    ? regret
                    : options_.ewma_alpha * regret + (1.0 - options_.ewma_alpha) * kernel.ewma;
  ++kernel.count;
  ++state.volume;

  // Cooldown gate: within the window, keep folding but never re-arm. Each
  // aborted cycle doubles the window (capped), so a retrain that keeps
  // failing validation degrades to a slow background retry instead of a
  // tight clone/fine-tune loop.
  const auto now = std::chrono::steady_clock::now();
  const auto effective_cooldown =
      options_.cooldown * (1u << std::min<std::uint32_t>(state.abort_streak, 6));
  if (state.ever_triggered && now - state.last_trigger < effective_cooldown)
    return std::nullopt;

  DriftTrigger trigger;
  if (kernel.count >= options_.min_kernel_observations &&
      kernel.ewma >= options_.regret_threshold) {
    trigger.route_key = route_key;
    trigger.ewma_regret = kernel.ewma;
    trigger.reason = "regret";
  } else if (options_.volume_threshold > 0 && state.volume >= options_.volume_threshold) {
    trigger.reason = "volume";
  } else {
    return std::nullopt;
  }
  trigger.machine = machine;
  trigger.observations = state.volume;
  state.last_trigger = now;
  state.ever_triggered = true;
  triggers_.fetch_add(1, std::memory_order_relaxed);
  return trigger;
}

void DriftMonitor::notify_swap(const std::string& machine) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = machines_.find(machine);
  if (it == machines_.end()) return;
  it->second.kernels.clear();
  it->second.volume = 0;
  it->second.abort_streak = 0;
  // The cooldown stamp survives the reset: triggers stay rate-limited even
  // when swaps complete faster than the cooldown window.
}

void DriftMonitor::notify_abort(const std::string& machine) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = machines_.find(machine);
  if (it == machines_.end()) return;
  if (it->second.abort_streak < 16) ++it->second.abort_streak;
}

}  // namespace mga::serve::retrain
