// DriftMonitor — the "when to learn" decision of the retrain loop
// (DESIGN.md §8).
//
// Folds each observation's prediction regret into a per-kernel EWMA (keyed
// by routing key, scoped per machine) and arms a retrain trigger when either
// (a) a kernel's EWMA crosses `regret_threshold` after at least
// `min_kernel_observations` samples — the workload drifted onto inputs the
// model mispredicts — or (b) a machine accumulated `volume_threshold`
// observations since its last swap — enough fresh signal to be worth folding
// in even without visible regret. Hysteresis is two-layered: a trigger
// starts a per-machine cooldown during which no further trigger fires (a
// persistently drifted kernel must not queue a retrain storm behind the
// running cycle), and a successful swap resets the machine's EWMAs and
// volume (`notify_swap`), so the *new* model must re-earn a trigger from
// scratch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "serve/retrain/options.hpp"

namespace mga::serve::retrain {

/// Why a retrain fired, for telemetry and logs.
struct DriftTrigger {
  std::string machine;
  std::uint64_t route_key = 0;    // kernel that crossed (0 for volume triggers)
  double ewma_regret = 0.0;       // that kernel's EWMA at the crossing
  std::uint64_t observations = 0; // machine volume since the last swap
  const char* reason = "";        // "regret" | "volume"
};

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftMonitorOptions options = {});

  DriftMonitor(const DriftMonitor&) = delete;
  DriftMonitor& operator=(const DriftMonitor&) = delete;

  /// Fold one observation; returns a trigger when this observation armed
  /// one (at most once per machine per cooldown window). Thread-safe.
  [[nodiscard]] std::optional<DriftTrigger> observe(const std::string& machine,
                                                    std::uint64_t route_key, double regret);

  /// Reset `machine`'s EWMAs, volume and abort backoff after a successful
  /// hot swap: the new model's regret starts from a clean slate.
  void notify_swap(const std::string& machine);

  /// A retrain cycle for `machine` aborted (validation gate, small
  /// snapshot, or error): exponentially back off the machine's effective
  /// cooldown (capped at 64x) so a persistently failing retrain cannot burn
  /// the controller thread in a tight clone/fine-tune loop. Reset by the
  /// next successful swap.
  void notify_abort(const std::string& machine);

  /// Triggers armed so far (monotone).
  [[nodiscard]] std::uint64_t triggers() const noexcept {
    return triggers_.load(std::memory_order_relaxed);
  }

 private:
  struct KernelState {
    double ewma = 0.0;
    std::uint64_t count = 0;
  };
  struct MachineState {
    std::unordered_map<std::uint64_t, KernelState> kernels;
    std::uint64_t volume = 0;  // observations since the last swap
    std::chrono::steady_clock::time_point last_trigger{};
    bool ever_triggered = false;
    std::uint32_t abort_streak = 0;  // consecutive aborted cycles
  };

  DriftMonitorOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, MachineState> machines_;
  std::atomic<std::uint64_t> triggers_{0};
};

}  // namespace mga::serve::retrain
