// Knobs of the online-retraining subsystem (see DESIGN.md §8).
//
// Split into the three parts of the loop: what the ObservationLog retains,
// when the DriftMonitor declares the serving model stale, and how the
// RetrainController fine-tunes / validates / hot-swaps a candidate. Kept in
// their own header so the serve engine layer (`ServeOptions` embeds a
// `RetrainOptions`) depends only on plain option structs, not on the
// controller machinery.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "core/tuner.hpp"

namespace mga::serve::retrain {

struct ObservationLogOptions {
  /// Lock stripes of the ring (append contention, not capacity policy).
  std::size_t shards = 4;
  /// Bounded ring per stripe; the oldest observation is overwritten when a
  /// stripe wraps. Total retention = shards x capacity_per_shard.
  std::size_t capacity_per_shard = 512;
};

struct DriftMonitorOptions {
  /// A kernel whose EWMA of prediction regret reaches this arms a retrain
  /// trigger (regret 0.10 = the served config runs 10% slower than the best
  /// config in the space).
  double regret_threshold = 0.10;
  /// Smoothing of the per-kernel regret EWMA.
  double ewma_alpha = 0.25;
  /// Observations a kernel needs before its EWMA is trusted — one noisy
  /// sample must not fire a retrain.
  std::uint64_t min_kernel_observations = 6;
  /// Volume trigger: retrain after this many observations for a machine
  /// since its last swap, regardless of regret. 0 disables it.
  std::uint64_t volume_threshold = 0;
  /// Hysteresis: after a trigger fires for a machine, no further trigger for
  /// it until this much time has passed — a persistently drifted kernel must
  /// not queue a retrain storm while the first cycle is still running.
  std::chrono::steady_clock::duration cooldown = std::chrono::seconds(5);
};

struct RetrainOptions {
  /// Master switch: when false the serve stack records nothing and starts no
  /// controller thread (zero overhead, the pre-retrain service exactly).
  bool enabled = false;
  /// Sample 1-in-N served requests into the observation log (each recorded
  /// observation costs one simulated run per configuration in the space, on
  /// the worker thread, after the batch's outcomes are published). 1 = every
  /// request.
  std::size_t observe_every = 1;
  /// A retrain cycle aborts (and counts `aborted_small_snapshot`) when the
  /// machine has fewer resident observations than this.
  std::size_t min_snapshot = 8;
  /// Fraction of the snapshot held back from fine-tuning and used to gate
  /// the swap. 0 disables the validation gate.
  double validation_holdout = 0.25;
  /// The candidate's mean holdout regret may exceed the serving model's by
  /// at most this before the swap is aborted (counts `aborted_validation`).
  /// Small but nonzero: a candidate that fixes a badly drifted slice is
  /// allowed a within-noise wobble on the background, not real forgetting.
  double max_regret_regression = 0.01;
  /// Replay against forgetting: mix up to `background_replay x` the drifted
  /// slice's row count of non-drifted (background) snapshot rows into the
  /// fine-tune set — deduplicated per (route, input) for domain coverage —
  /// so gradients that fix the slice are anchored by rows the model already
  /// serves well. 0 trains on the drifted slice alone.
  double background_replay = 2.0;
  ObservationLogOptions log;
  DriftMonitorOptions drift;
  core::FineTuneOptions fine_tune;
  /// Instrumentation seam for tests and operators: runs on the controller
  /// thread immediately before the registry swap, while the affected shards
  /// are paused. Tests use it as a barrier to observe the quiesce window
  /// deterministically; leave empty in production.
  std::function<void()> before_swap;
};

}  // namespace mga::serve::retrain
