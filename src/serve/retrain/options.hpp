// Knobs of the online-retraining subsystem (see DESIGN.md §8).
//
// Split into the three parts of the loop: what the ObservationLog retains,
// when the DriftMonitor declares the serving model stale, and how the
// RetrainController fine-tunes / validates / hot-swaps a candidate. Kept in
// their own header so the serve engine layer (`ServeOptions` embeds a
// `RetrainOptions`) depends only on plain option structs, not on the
// controller machinery.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/tuner.hpp"

namespace mga::serve::retrain {

struct ObservationLogOptions {
  /// Lock stripes of the ring (append contention, not capacity policy).
  std::size_t shards = 4;
  /// Bounded ring per stripe; the oldest observation is overwritten when a
  /// stripe wraps. Total retention = shards x capacity_per_shard.
  std::size_t capacity_per_shard = 512;
};

struct DriftMonitorOptions {
  /// A kernel whose EWMA of prediction regret reaches this arms a retrain
  /// trigger (regret 0.10 = the served config runs 10% slower than the best
  /// config in the space).
  double regret_threshold = 0.10;
  /// Smoothing of the per-kernel regret EWMA.
  double ewma_alpha = 0.25;
  /// Observations a kernel needs before its EWMA is trusted — one noisy
  /// sample must not fire a retrain.
  std::uint64_t min_kernel_observations = 6;
  /// Volume trigger: retrain after this many observations for a machine
  /// since its last swap, regardless of regret. 0 disables it.
  std::uint64_t volume_threshold = 0;
  /// Hysteresis: after a trigger fires for a machine, no further trigger for
  /// it until this much time has passed — a persistently drifted kernel must
  /// not queue a retrain storm while the first cycle is still running.
  std::chrono::steady_clock::duration cooldown = std::chrono::seconds(5);
};

/// Staged rollout of a validated candidate (DESIGN.md §8): instead of an
/// immediate full swap, the candidate is registered under a provisional
/// generation and the owning shards route a fraction of each drifted
/// route's traffic to it; live regret of the two arms decides promote vs
/// rollback.
struct CanaryOptions {
  /// Master switch. Off = the PR-4 behavior exactly: a validated candidate
  /// hot-swaps immediately.
  bool enabled = false;
  /// Fraction of each drifted route's traffic served by the candidate
  /// during the canary phase (weighted round-robin per route, so the split
  /// is deterministic in arrival order and exact in the limit).
  double fraction = 0.25;
  /// The judge waits until each arm (canary-served and incumbent-served at
  /// the current generation, over the drifted routes) has at least this
  /// many scored observations before comparing live regret.
  std::size_t min_samples = 8;
  /// The candidate's live canary regret may exceed the incumbent's by at
  /// most this before the judge rolls back instead of promoting. Mirrors
  /// `RetrainOptions::max_regret_regression`, but measured on served
  /// traffic the candidate could not have memorized.
  double max_regret_margin = 0.01;
  /// The canary phase rolls back when the sample window is not reached
  /// within this long — a candidate that cannot attract traffic must not
  /// hold a provisional generation (and the controller thread) forever.
  std::chrono::steady_clock::duration timeout = std::chrono::seconds(60);
  /// How often the controller re-checks the observation log for canary
  /// window progress while the phase is open.
  std::chrono::steady_clock::duration poll = std::chrono::milliseconds(10);
};

/// What the controller installs on each owning shard for the duration of a
/// canary phase: which machine and routes are canaried, the provisional
/// generation to resolve for the canary arm, and the traffic fraction. The
/// shard keeps its own per-route round-robin counters.
struct CanaryAssignment {
  std::string machine;
  std::uint64_t generation = 0;  // provisional (staged) generation
  double fraction = 0.25;
  std::vector<std::uint64_t> routes;  // drifted route keys, sorted

  [[nodiscard]] bool covers(std::uint64_t route_key) const noexcept {
    return std::binary_search(routes.begin(), routes.end(), route_key);
  }
};

struct RetrainOptions {
  /// Master switch: when false the serve stack records nothing and starts no
  /// controller thread (zero overhead, the pre-retrain service exactly).
  bool enabled = false;
  /// Sample 1-in-N served requests into the observation log (each recorded
  /// observation costs one simulated run per configuration in the space, on
  /// the worker thread, after the batch's outcomes are published). 1 = every
  /// request.
  std::size_t observe_every = 1;
  /// A retrain cycle aborts (and counts `aborted_small_snapshot`) when the
  /// machine has fewer resident observations than this.
  std::size_t min_snapshot = 8;
  /// Fraction of the snapshot held back from fine-tuning and used to gate
  /// the swap. 0 disables the validation gate.
  double validation_holdout = 0.25;
  /// The candidate's mean holdout regret may exceed the serving model's by
  /// at most this before the swap is aborted (counts `aborted_validation`).
  /// Small but nonzero: a candidate that fixes a badly drifted slice is
  /// allowed a within-noise wobble on the background, not real forgetting.
  double max_regret_regression = 0.01;
  /// Replay against forgetting: mix up to `background_replay x` the drifted
  /// slice's row count of non-drifted (background) snapshot rows into the
  /// fine-tune set — deduplicated per (route, input) for domain coverage —
  /// so gradients that fix the slice are anchored by rows the model already
  /// serves well. 0 trains on the drifted slice alone.
  double background_replay = 2.0;
  ObservationLogOptions log;
  DriftMonitorOptions drift;
  core::FineTuneOptions fine_tune;
  CanaryOptions canary;
  /// Instrumentation seam for tests and operators: runs on the controller
  /// thread immediately before the registry swap (or canary promotion),
  /// while the affected shards are paused. Tests use it as a barrier to
  /// observe the quiesce window deterministically; leave empty in
  /// production.
  std::function<void()> before_swap;
  /// Instrumentation seam: maps the fine-tuned candidate *after* the
  /// holdout validation gate and before it is staged/swapped. Tests use it
  /// to substitute a deliberately bad candidate — the holdout-gaming model
  /// the canary phase exists to catch. Leave empty in production.
  std::function<core::MgaTuner(core::MgaTuner)> transform_candidate;
  /// Instrumentation seam: runs on the controller thread right after the
  /// candidate is staged and the canary assignments are installed (the
  /// moment split traffic begins). Leave empty in production.
  std::function<void()> on_canary_begin;
};

}  // namespace mga::serve::retrain
