// ObservationLog — the "observe" third of the observe → learn → deploy loop
// (DESIGN.md §8): a bounded, lock-striped ring of served observations.
//
// The ServeShard worker loop appends one observation per served request
// (after the batch's outcomes are published): the routing key, the dynamic
// feature row (profiled counters), the configuration the model chose, and
// the realized runtime of that choice next to the oracle table for the whole
// configuration space — `hwsim` is this reproduction's ground truth, so
// "realized" is one simulated run per configuration. Prediction regret
// (realized / best − 1) is what the DriftMonitor folds into its EWMAs, and
// the full per-configuration table is exactly the dataset row format
// (`dataset::OmpSample`), so a snapshot exports into fine-tuning rows with
// no further simulator work.
//
// Appends are O(1): hash the route key onto a stripe, overwrite the oldest
// slot when the stripe's ring is full. Snapshots copy and return a
// deterministic order (route key, input size, sequence) so fine-tuning on a
// snapshot is reproducible regardless of worker interleaving.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "corpus/spec.hpp"
#include "dataset/dataset.hpp"
#include "hwsim/workload.hpp"
#include "obs/probe.hpp"
#include "serve/retrain/options.hpp"

namespace mga::serve::retrain {

/// What the serve engine hands the retrain subsystem per served request, on
/// the worker thread, after the request's outcome is published. References
/// are valid only for the duration of the callback.
struct ServedSample {
  const std::string& machine;
  const corpus::KernelSpec& kernel;
  const hwsim::KernelWorkload& workload;  // from the cached features: no IR re-generation
  double input_bytes = 0.0;
  const hwsim::PapiCounters& counters;
  int label = 0;  // index of the served config in tuner.space()
  std::uint64_t model_generation = 0;
  const core::MgaTuner& tuner;  // the generation that served the request
};

/// Hook the engine layer calls with each (sampled) served request.
using ObservationFn = std::function<void(const ServedSample&)>;

/// One logged observation: the request's identity and feature row plus the
/// scored outcome (realized runtime of the chosen config vs. the oracle
/// table over the whole space).
struct Observation {
  std::uint64_t route_key = 0;  // route_key(machine, route_fingerprint(kernel))
  std::uint64_t seq = 0;        // global append order
  std::string machine;
  corpus::KernelSpec kernel;
  double input_bytes = 0.0;
  hwsim::PapiCounters counters;  // the dynamic feature row the model saw
  int served_label = 0;          // config index the model chose
  int oracle_label = 0;          // argmin of `seconds`
  std::uint64_t model_generation = 0;
  double realized_seconds = 0.0;  // runtime of the served config
  double best_seconds = 0.0;      // runtime of the oracle config
  double default_seconds = 0.0;   // runtime of the default config
  std::vector<double> seconds;    // runtime per config (dataset row format)

  /// Prediction regret: how much slower the served config ran than the best
  /// config in the space (0 = the model predicted the oracle).
  [[nodiscard]] double regret() const noexcept {
    return best_seconds > 0.0 ? realized_seconds / best_seconds - 1.0 : 0.0;
  }
};

class ObservationLog {
 public:
  explicit ObservationLog(ObservationLogOptions options = {});

  ObservationLog(const ObservationLog&) = delete;
  ObservationLog& operator=(const ObservationLog&) = delete;

  /// O(1): assigns the observation its sequence number and writes it into
  /// its stripe's ring, overwriting the stripe's oldest slot on wrap.
  void append(Observation observation);

  /// Total observations ever appended (monotone; survives ring wraps).
  [[nodiscard]] std::uint64_t appended() const noexcept {
    return appended_.load(std::memory_order_relaxed);
  }

  /// Observations currently resident across all stripes.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] std::size_t capacity() const noexcept {
    return options_.shards * options_.capacity_per_shard;
  }

  /// Copy of every resident observation in deterministic (route key, input
  /// size, sequence) order — reproducible fine-tuning input regardless of
  /// which worker threads fed the log in which interleaving.
  [[nodiscard]] std::vector<Observation> snapshot() const;

  /// Observations re-shaped into the dataset row format: deduplicated kernel
  /// specs plus one `OmpSample` per observation, labeled with the *oracle*
  /// config (the fine-tuning target), `kernel_id` indexing `kernels`.
  struct TrainingSlice {
    std::vector<corpus::KernelSpec> kernels;
    std::vector<dataset::OmpSample> samples;
  };
  [[nodiscard]] static TrainingSlice to_dataset(const std::vector<Observation>& observations);

 private:
  struct Stripe {
    mutable obs::ProbedMutex mutex{"observation_log.stripe"};
    std::vector<Observation> ring;
    std::size_t next = 0;  // overwrite cursor once the ring is full
  };

  ObservationLogOptions options_;
  std::vector<Stripe> stripes_;
  std::atomic<std::uint64_t> appended_{0};
};

}  // namespace mga::serve::retrain
