// RetrainController — the "learn and deploy" loop of the retrain subsystem
// (DESIGN.md §8), on its own thread.
//
// Shard workers call `record` per served request (sampled by
// `observe_every`): the controller scores the served config against the
// oracle over the whole configuration space (one cheap simulated run per
// config), appends the observation to the ObservationLog and folds its
// regret into the DriftMonitor. When the monitor arms a trigger, the
// controller thread runs a retrain cycle:
//
//   snapshot the log → isolate the drifted slice (routes whose mean regret
//   crossed the drift threshold; the whole snapshot for volume triggers) →
//   warm-start fine-tune a clone of the serving tuner on the slice's
//   oracle-labeled rows → validate on a held-back cut of the *full* snapshot
//   (the candidate must not fix the slice by forgetting the background) →
//   deploy. With `CanaryOptions::enabled` off, deploy is the direct path:
//   pause only the shards that own the drifted routes → ModelRegistry::swap
//   (fresh cache tag + bumped generation) → resume. With canarying on, the
//   candidate is *staged* under a provisional generation instead and the
//   owning shards split each drifted route's traffic between the arms
//   (`CanaryOptions::fraction`); the CanaryJudge compares the two arms'
//   live regret from the ObservationLog once each has a minimum sample
//   window and either promotes (quiesce → ModelRegistry::promote → resume,
//   monitor reset) or rolls back (registry drops the provisional
//   generation, abort backoff applies) — a fine-tune that games its holdout
//   can no longer regress live traffic fleet-wide.
//
// The service keeps taking traffic throughout: non-owning shards never
// pause, paused shards only queue (their submissions resolve after resume),
// and in-flight batches keep the old tuner alive via shared_ptr until they
// publish. The controller reaches the serving fleet exclusively through the
// `Hooks` callbacks, so it never depends on the facade or engine types.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/watchdog.hpp"
#include "serve/model_registry.hpp"
#include "serve/retrain/drift_monitor.hpp"
#include "serve/retrain/observation_log.hpp"
#include "util/table.hpp"

namespace mga::serve::retrain {

/// One coherent view of the retrain loop's counters.
struct RetrainStatsSnapshot {
  std::uint64_t observations = 0;  // recorded into the log
  std::uint64_t sampled_out = 0;   // skipped by observe_every
  std::uint64_t triggers = 0;      // DriftMonitor triggers armed
  std::uint64_t cycles = 0;        // retrain cycles completed (any outcome)
  std::uint64_t swaps = 0;         // cycles that deployed (direct swap or promotion)
  std::uint64_t aborted_validation = 0;
  std::uint64_t aborted_small_snapshot = 0;
  /// Canary rollout counters: phases entered, judged promotions, rollbacks
  /// (with the subset that rolled back because the sample window never
  /// filled before `CanaryOptions::timeout`), and whether a phase is open
  /// right now (a provisional generation is taking split traffic).
  std::uint64_t canaries = 0;
  std::uint64_t canary_promoted = 0;
  std::uint64_t canary_rolled_back = 0;
  std::uint64_t canary_timeouts = 0;
  bool canary_active = false;
  /// Regret-triggered cycles whose snapshot no longer showed any route over
  /// the drift threshold (short EWMA burst): aborted instead of retraining
  /// the fleet on healthy traffic.
  std::uint64_t aborted_no_drift = 0;
  /// Last completed cycle, for operators: mean realized regret of the
  /// snapshot the cycle trained on, the candidate's predicted regret on the
  /// same slice, the fine-tune loss trajectory, the generation deployed (0
  /// when the cycle aborted) and which shards were quiesced for the swap.
  double last_pre_regret = 0.0;
  double last_post_regret = 0.0;
  double last_initial_loss = 0.0;
  double last_final_loss = 0.0;
  std::uint64_t last_generation = 0;
  std::vector<std::size_t> last_quiesced_shards;
  /// The validation gate's inputs: mean holdout regret of the serving model
  /// vs. the candidate (equal-zero when the gate was skipped).
  double last_holdout_current = 0.0;
  double last_holdout_candidate = 0.0;
  /// The last CanaryJudge verdict's inputs: the provisional generation
  /// judged, mean live regret of the two arms over the drifted routes, and
  /// the canary-arm sample count the verdict rested on (all zero before the
  /// first judged phase).
  std::uint64_t last_canary_generation = 0;
  double last_canary_regret = 0.0;
  double last_canary_incumbent_regret = 0.0;
  std::uint64_t last_canary_samples = 0;
};

class RetrainController {
 public:
  /// How the controller reaches the serving fleet. The first three must
  /// always be valid; the canary pair is required when
  /// `CanaryOptions::enabled` is set. All are called only from the thread
  /// running the cycle (the controller thread, or a `retrain_now` caller).
  struct Hooks {
    std::function<std::size_t(std::uint64_t route_key)> shard_of;
    std::function<void(std::size_t shard)> pause_shard;
    std::function<void(std::size_t shard)> resume_shard;
    /// Install / remove a canary assignment on a shard (the facade maps
    /// these onto ServeShard::set_canary / clear_canary).
    std::function<void(std::size_t shard, std::shared_ptr<const CanaryAssignment>)>
        begin_canary;
    std::function<void(std::size_t shard, const std::string& machine)> end_canary;
  };

  RetrainController(std::shared_ptr<ModelRegistry> registry, RetrainOptions options,
                    Hooks hooks);
  ~RetrainController();

  RetrainController(const RetrainController&) = delete;
  RetrainController& operator=(const RetrainController&) = delete;

  /// Score and log one served request; called from shard worker threads
  /// after the request's outcome is published. May arm a drift trigger,
  /// which wakes the controller thread. Never throws for scoring problems —
  /// a request that cannot be scored is simply not logged.
  void record(const ServedSample& sample);

  /// Synchronous retrain cycle for `machine` (operator / test hook): runs on
  /// the calling thread, returns true when a swap was deployed. The same
  /// snapshot / fine-tune / validate / quiesce / swap path the trigger-driven
  /// cycle takes.
  bool retrain_now(const std::string& machine);

  /// Stop the controller thread. Idempotent; a cycle in flight completes
  /// first (its pause/resume pairing is never torn). The destructor calls it.
  void stop();

  [[nodiscard]] RetrainStatsSnapshot stats() const;
  [[nodiscard]] const ObservationLog& log() const noexcept { return log_; }

  /// Block until at least `cycles` retrain cycles have completed; false on
  /// timeout. A cycle counts whether it swapped or aborted.
  [[nodiscard]] bool wait_for_cycles(std::uint64_t cycles,
                                     std::chrono::steady_clock::duration timeout) const;

  /// Stall-watchdog wiring: the controller's liveness heartbeat (advances
  /// per dequeued trigger, per completed cycle, and on every canary poll,
  /// so a long sample window is progress, not a stall) and the work the
  /// watchdog should treat as pending (queued machines plus the cycle in
  /// flight).
  [[nodiscard]] obs::Heartbeat& heartbeat() noexcept { return heartbeat_; }
  [[nodiscard]] std::size_t pending_count() const;

 private:
  void controller_loop();
  /// One full snapshot → fine-tune → validate → quiesce → swap pass.
  /// Serialized on `cycle_run_mutex_`: the trigger-driven controller thread
  /// and a concurrent `retrain_now` caller must never interleave their
  /// pause/swap/resume windows.
  bool run_cycle(const std::string& machine);
  /// Mean regret `tuner` would realize on `rows`, scored offline against the
  /// rows' stored per-config runtime tables (no simulator calls).
  [[nodiscard]] static double mean_predicted_regret(const core::MgaTuner& tuner,
                                                    const std::vector<Observation>& rows);

  std::shared_ptr<ModelRegistry> registry_;
  RetrainOptions options_;
  Hooks hooks_;
  ObservationLog log_;
  DriftMonitor drift_;

  std::atomic<std::uint64_t> sample_counter_{0};
  std::atomic<std::uint64_t> observations_{0};
  std::atomic<std::uint64_t> sampled_out_{0};
  std::atomic<std::uint64_t> cycles_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> aborted_validation_{0};
  std::atomic<std::uint64_t> aborted_small_snapshot_{0};
  std::atomic<std::uint64_t> aborted_no_drift_{0};
  std::atomic<std::uint64_t> canaries_{0};
  std::atomic<std::uint64_t> canary_promoted_{0};
  std::atomic<std::uint64_t> canary_rolled_back_{0};
  std::atomic<std::uint64_t> canary_timeouts_{0};
  std::atomic<bool> canary_active_{false};
  obs::Heartbeat heartbeat_;

  std::mutex cycle_run_mutex_;           // serializes run_cycle executions
  mutable std::mutex last_cycle_mutex_;  // guards the last_* block
  double last_pre_regret_ = 0.0;
  double last_post_regret_ = 0.0;
  double last_initial_loss_ = 0.0;
  double last_final_loss_ = 0.0;
  std::uint64_t last_generation_ = 0;
  std::vector<std::size_t> last_quiesced_shards_;
  double last_holdout_current_ = 0.0;
  double last_holdout_candidate_ = 0.0;
  std::uint64_t last_canary_generation_ = 0;
  double last_canary_regret_ = 0.0;
  double last_canary_incumbent_regret_ = 0.0;
  std::uint64_t last_canary_samples_ = 0;

  mutable std::mutex queue_mutex_;
  mutable std::condition_variable queue_cv_;   // work arrived / stopping
  mutable std::condition_variable cycle_cv_;   // a cycle completed
  std::deque<std::string> pending_;            // machines awaiting a cycle
  std::string in_flight_;                      // machine whose cycle is running
  bool stopping_ = false;
  std::thread thread_;
};

/// Operator-facing rendering of the retrain counters (the analogue of
/// `stats_table` for the serve counters).
[[nodiscard]] util::Table retrain_table(const RetrainStatsSnapshot& stats);

}  // namespace mga::serve::retrain
