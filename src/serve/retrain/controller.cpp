#include "serve/retrain/controller.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <utility>

#include "hwsim/cpu_model.hpp"
#include "obs/trace.hpp"
#include "serve/router.hpp"
#include "util/check.hpp"

namespace mga::serve::retrain {

namespace {

/// RAII pause/resume pairing around a deploy: whatever exits the scope —
/// the swap/promotion, a throwing before_swap hook, a machine yanked from
/// the registry — every paused shard is resumed. A leaked pause would park
/// its shard forever.
struct Quiesce {
  const std::set<std::size_t>& shards;
  const RetrainController::Hooks& hooks;
  Quiesce(const std::set<std::size_t>& shards, const RetrainController::Hooks& hooks)
      : shards(shards), hooks(hooks) {
    for (const std::size_t shard : shards) hooks.pause_shard(shard);
  }
  ~Quiesce() {
    for (const std::size_t shard : shards) hooks.resume_shard(shard);
  }
};

}  // namespace

RetrainController::RetrainController(std::shared_ptr<ModelRegistry> registry,
                                     RetrainOptions options, Hooks hooks)
    : registry_(std::move(registry)),
      options_(std::move(options)),
      hooks_(std::move(hooks)),
      log_(options_.log),
      drift_(options_.drift) {
  MGA_CHECK_MSG(registry_ != nullptr, "RetrainController: null registry");
  MGA_CHECK_MSG(hooks_.shard_of && hooks_.pause_shard && hooks_.resume_shard,
                "RetrainController: all three shard hooks are required");
  MGA_CHECK_MSG(!options_.canary.enabled || (hooks_.begin_canary && hooks_.end_canary),
                "RetrainController: canarying needs the begin/end_canary hooks");
  MGA_CHECK_MSG(options_.observe_every > 0,
                "RetrainController: observe_every must be positive");
  MGA_CHECK_MSG(!options_.canary.enabled ||
                    (options_.canary.fraction > 0.0 && options_.canary.fraction <= 1.0),
                "RetrainController: canary fraction must be in (0, 1]");
  MGA_CHECK_MSG(!options_.canary.enabled || options_.canary.min_samples > 0,
                "RetrainController: canary min_samples must be positive — a zero "
                "window would promote on no evidence");
  thread_ = std::thread([this] { controller_loop(); });
}

RetrainController::~RetrainController() { stop(); }

void RetrainController::stop() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  cycle_cv_.notify_all();  // wait_for_cycles waiters must not sleep out their timeout
  if (thread_.joinable()) thread_.join();
}

void RetrainController::record(const ServedSample& sample) {
  const std::uint64_t n = sample_counter_.fetch_add(1, std::memory_order_relaxed);
  if (options_.observe_every > 1 && n % options_.observe_every != 0) {
    sampled_out_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Score the served config against the oracle: one simulated run per config
  // in the space (hwsim is this reproduction's ground truth for "realized").
  const std::vector<hwsim::OmpConfig>& space = sample.tuner.space();
  const hwsim::MachineConfig& machine_config = sample.tuner.machine();
  if (sample.label < 0 || static_cast<std::size_t>(sample.label) >= space.size()) return;

  Observation observation;
  observation.route_key = route_key(sample.machine, route_fingerprint(sample.kernel));
  observation.machine = sample.machine;
  observation.kernel = sample.kernel;
  observation.input_bytes = sample.input_bytes;
  observation.counters = sample.counters;
  observation.served_label = sample.label;
  observation.model_generation = sample.model_generation;
  observation.seconds.reserve(space.size());
  double best = 0.0;
  for (std::size_t c = 0; c < space.size(); ++c) {
    const double seconds =
        hwsim::cpu_execute(sample.workload, machine_config, sample.input_bytes, space[c])
            .seconds;
    observation.seconds.push_back(seconds);
    if (c == 0 || seconds < best) {
      best = seconds;
      observation.oracle_label = static_cast<int>(c);
    }
  }
  observation.best_seconds = best;
  observation.realized_seconds =
      observation.seconds[static_cast<std::size_t>(sample.label)];
  observation.default_seconds =
      hwsim::cpu_execute(sample.workload, machine_config, sample.input_bytes,
                         hwsim::default_config(machine_config))
          .seconds;
  const double regret = observation.regret();
  const std::uint64_t key = observation.route_key;
  const std::string machine = observation.machine;
  log_.append(std::move(observation));
  observations_.fetch_add(1, std::memory_order_relaxed);

  if (drift_.observe(machine, key, regret)) {
    {
      // Dedup against both the queue and the cycle currently running: a
      // cooldown shorter than a fine-tune must not line up a back-to-back
      // cycle that runs the instant the swap lands, finds its
      // generation-filtered snapshot empty, and penalizes the fresh swap
      // with abort backoff.
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      if (machine != in_flight_ &&
          std::find(pending_.begin(), pending_.end(), machine) == pending_.end())
        pending_.push_back(machine);
    }
    queue_cv_.notify_all();
  }
}

void RetrainController::controller_loop() {
  for (;;) {
    std::string machine;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;  // discard queued work; a running cycle finished
      machine = std::move(pending_.front());
      pending_.pop_front();
      in_flight_ = machine;
    }
    heartbeat_.beat();  // one dequeued trigger = one retired intake unit
    try {
      run_cycle(machine);
    } catch (...) {
      // A cycle that throws (registry load failure, machine removed) must
      // not kill the controller; the next trigger retries from scratch,
      // backed off like any other failed cycle.
      drift_.notify_abort(machine);
    }
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      in_flight_.clear();
      cycles_.fetch_add(1, std::memory_order_relaxed);
    }
    heartbeat_.beat();  // one completed cycle (any outcome)
    cycle_cv_.notify_all();
  }
}

std::size_t RetrainController::pending_count() const {
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  return pending_.size() + (in_flight_.empty() ? 0 : 1);
}

bool RetrainController::retrain_now(const std::string& machine) {
  bool swapped = false;
  try {
    swapped = run_cycle(machine);
  } catch (...) {
    // Same accounting as the trigger-driven path: the cycle completed (by
    // failing), backoff applies, and wait_for_cycles observers wake — then
    // the caller sees the error.
    drift_.notify_abort(machine);
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      cycles_.fetch_add(1, std::memory_order_relaxed);
    }
    cycle_cv_.notify_all();
    throw;
  }
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    cycles_.fetch_add(1, std::memory_order_relaxed);
  }
  cycle_cv_.notify_all();
  return swapped;
}

double RetrainController::mean_predicted_regret(const core::MgaTuner& tuner,
                                                const std::vector<Observation>& rows) {
  // One feature extraction + grouped forward per distinct kernel; regret is
  // scored offline against each row's stored per-config runtime table.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < rows.size(); ++i) groups[rows[i].route_key].push_back(i);
  double total = 0.0;
  std::size_t scored = 0;
  for (const auto& [key, members] : groups) {
    const core::KernelFeatures features = tuner.extract_features(rows[members.front()].kernel);
    std::vector<hwsim::PapiCounters> counters;
    counters.reserve(members.size());
    for (const std::size_t i : members) counters.push_back(rows[i].counters);
    const std::vector<int> labels = tuner.predict_labels(features, counters);
    for (std::size_t m = 0; m < members.size(); ++m) {
      const Observation& row = rows[members[m]];
      const auto label = static_cast<std::size_t>(labels[m]);
      if (label >= row.seconds.size() || row.best_seconds <= 0.0) continue;
      total += row.seconds[label] / row.best_seconds - 1.0;
      ++scored;
    }
  }
  return scored == 0 ? 0.0 : total / static_cast<double>(scored);
}

bool RetrainController::run_cycle(const std::string& machine) {
  const std::lock_guard<std::mutex> run_lock(cycle_run_mutex_);
  using Clock = std::chrono::steady_clock;
  // Retrain lifecycle spans: request_id is the cycle number (cycles are
  // serialized on cycle_run_mutex_, so `completed + 1` is this cycle's
  // ordinal), shard is kNoShard — the trace groups them under their own
  // process row next to the per-request serve spans.
  const bool traced = obs::enabled();
  const std::uint64_t cycle_id = cycles_.load(std::memory_order_relaxed) + 1;
  const auto span = [&](obs::Stage stage, Clock::time_point start) {
    if (traced)
      obs::TraceCollector::instance().record_span(cycle_id, stage, obs::kNoShard, start,
                                                  Clock::now());
  };
  // The whole cycle, recorded on every exit path (early aborts, throwing
  // hooks) so a trace never shows a cycle that started but has no extent.
  struct CycleSpan {
    const decltype(span)& record;
    Clock::time_point start = Clock::now();
    ~CycleSpan() { record(obs::Stage::kRetrainCycle, start); }
  } cycle_span{span};
  // Only rows the *current* generation produced are evidence: a ring that
  // still holds pre-swap observations must not re-mark routes the last swap
  // already fixed as drifted (their realized runtimes reflect the old
  // model's choices). A freshly swapped model therefore re-earns its next
  // cycle from fresh observations — the same clean-slate rule as the
  // DriftMonitor reset.
  const std::uint64_t current_generation = registry_->generation(machine);
  const std::vector<Observation> all = log_.snapshot();
  std::vector<Observation> rows;
  rows.reserve(all.size());
  for (const Observation& observation : all)
    if (observation.machine == machine && observation.model_generation == current_generation)
      rows.push_back(observation);
  if (rows.size() < options_.min_snapshot) {
    aborted_small_snapshot_.fetch_add(1, std::memory_order_relaxed);
    drift_.notify_abort(machine);
    return false;
  }

  // The drifted slice: routes whose mean realized regret in the snapshot
  // crossed the drift threshold. Fine-tuning focuses on these rows — a log
  // dominated by healthy background traffic must not drown the drift signal
  // in gradients that just re-confirm what the model already predicts. When
  // nothing crossed (a volume trigger), the whole snapshot is the slice.
  std::unordered_map<std::uint64_t, std::pair<double, std::size_t>> route_regret;
  for (const Observation& row : rows) {
    auto& [sum, count] = route_regret[row.route_key];
    sum += row.regret();
    ++count;
  }
  std::set<std::uint64_t> drifted_routes;
  for (const auto& [key, acc] : route_regret)
    if (acc.first / static_cast<double>(acc.second) >= options_.drift.regret_threshold)
      drifted_routes.insert(key);
  std::vector<Observation> focus;
  if (drifted_routes.empty()) {
    // No route's snapshot regret survived over the threshold: a short EWMA
    // burst armed the trigger but the evidence is gone. Retraining the
    // fleet on a healthy snapshot would be pure disruption (generation
    // bump, cache invalidation, quiesce) — abort, unless volume triggering
    // is enabled, where "fold in everything periodically" is the contract.
    if (options_.drift.volume_threshold == 0) {
      aborted_no_drift_.fetch_add(1, std::memory_order_relaxed);
      drift_.notify_abort(machine);
      return false;
    }
    focus = rows;
  } else {
    for (const Observation& row : rows)
      if (drifted_routes.count(row.route_key) > 0) focus.push_back(row);
  }

  // Hold back every k-th row of the *full* snapshot for validation — the
  // gate must catch a candidate that fixes the drifted slice by forgetting
  // the background — and fine-tune on the focus rows that are not held out.
  // The snapshot order is deterministic, so the split is too.
  std::vector<Observation> holdout_rows;
  std::set<std::uint64_t> held;
  if (options_.validation_holdout > 0.0) {
    const auto k = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::llround(1.0 / options_.validation_holdout)));
    for (std::size_t i = k - 1; i < rows.size(); i += k) {
      holdout_rows.push_back(rows[i]);
      held.insert(rows[i].seq);
    }
  }
  std::vector<Observation> train_rows;
  for (const Observation& row : focus)
    if (held.count(row.seq) == 0) train_rows.push_back(row);
  if (train_rows.empty()) {
    // Degenerate split: every focus row landed in the holdout. Train on the
    // slice and drop the gate entirely — validating a candidate on the very
    // rows it memorized would pass trivially, which is worse than not
    // gating — and free the held rows for the replay cut below.
    train_rows = focus;
    holdout_rows.clear();
    held.clear();
  }

  // Replay: anchor the fine-tune with a deterministic spread of background
  // rows (oracle-labeled, not drifted, not held out), so fixing the slice
  // cannot silently unlearn the traffic the model already serves well.
  if (!drifted_routes.empty() && options_.background_replay > 0.0) {
    // One row per distinct (route, input) — coverage of the background
    // domain matters more than row count (duplicates add no anchor).
    std::vector<const Observation*> background;
    std::set<std::pair<std::uint64_t, double>> seen;
    for (const Observation& row : rows)
      if (drifted_routes.count(row.route_key) == 0 && held.count(row.seq) == 0 &&
          seen.emplace(row.route_key, row.input_bytes).second)
        background.push_back(&row);
    const auto budget = static_cast<std::size_t>(
        std::llround(options_.background_replay * static_cast<double>(train_rows.size())));
    if (!background.empty() && budget > 0) {
      const std::size_t stride = std::max<std::size_t>(1, background.size() / budget);
      for (std::size_t i = 0; i < background.size() && train_rows.size() < focus.size() + budget;
           i += stride)
        train_rows.push_back(*background[i]);
    }
  }

  const ModelRegistry::Resolved current = registry_->resolve(machine);
  core::MgaTuner candidate = current.tuner->clone();
  const ObservationLog::TrainingSlice slice = ObservationLog::to_dataset(train_rows);
  const Clock::time_point fine_tune_start = Clock::now();
  const core::FineTuneReport report =
      candidate.fine_tune(slice.kernels, slice.samples, options_.fine_tune);
  span(obs::Stage::kRetrainFineTune, fine_tune_start);

  // What serving realized on the drifted slice vs. what the candidate would
  // choose on it.
  double pre_regret = 0.0;
  for (const Observation& row : focus) pre_regret += row.regret();
  pre_regret /= static_cast<double>(focus.size());
  const double post_regret = mean_predicted_regret(candidate, focus);

  double current_holdout = 0.0, candidate_holdout = 0.0;
  if (!holdout_rows.empty()) {
    const Clock::time_point holdout_start = Clock::now();
    current_holdout = mean_predicted_regret(*current.tuner, holdout_rows);
    candidate_holdout = mean_predicted_regret(candidate, holdout_rows);
    span(obs::Stage::kRetrainHoldout, holdout_start);
    if (candidate_holdout > current_holdout + options_.max_regret_regression) {
      aborted_validation_.fetch_add(1, std::memory_order_relaxed);
      drift_.notify_abort(machine);
      const std::lock_guard<std::mutex> lock(last_cycle_mutex_);
      last_pre_regret_ = pre_regret;
      last_post_regret_ = post_regret;
      last_initial_loss_ = report.initial_loss;
      last_final_loss_ = report.final_loss;
      last_generation_ = 0;
      last_quiesced_shards_.clear();
      last_holdout_current_ = current_holdout;
      last_holdout_candidate_ = candidate_holdout;
      return false;
    }
  }

  // Instrumentation seam *after* the holdout gate: what it returns is what
  // ships — tests substitute a deliberately bad candidate here to model a
  // fine-tune that games its holdout, exactly what the canary phase exists
  // to catch.
  if (options_.transform_candidate)
    candidate = options_.transform_candidate(std::move(candidate));

  // The blast radius of the deploy: the shards owning the evidence routes.
  std::set<std::size_t> affected;
  for (const Observation& row : focus) affected.insert(hooks_.shard_of(row.route_key));

  if (!options_.canary.enabled) {
    // Direct deploy: quiesce only the owning shards — pause → swap →
    // resume. Every other shard keeps serving at full rate; the fresh
    // registration tag makes the quiesced shards' stale cached features
    // miss on their next lookup.
    std::uint64_t generation = 0;
    {
      const Clock::time_point swap_start = Clock::now();
      const Quiesce quiesce(affected, hooks_);
      if (options_.before_swap) options_.before_swap();
      generation = registry_->swap(machine, std::move(candidate));
      drift_.notify_swap(machine);
      span(obs::Stage::kRetrainSwap, swap_start);
    }

    swaps_.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(last_cycle_mutex_);
    last_pre_regret_ = pre_regret;
    last_post_regret_ = post_regret;
    last_initial_loss_ = report.initial_loss;
    last_final_loss_ = report.final_loss;
    last_generation_ = generation;
    last_quiesced_shards_.assign(affected.begin(), affected.end());
    last_holdout_current_ = current_holdout;
    last_holdout_candidate_ = candidate_holdout;
    return true;
  }

  // ---- canary rollout (DESIGN.md §8): stage → split → judge → promote or
  // roll back --------------------------------------------------------------
  std::vector<std::uint64_t> routes;  // evidence routes, sorted for covers()
  {
    std::set<std::uint64_t> keys;
    for (const Observation& row : focus) keys.insert(row.route_key);
    routes.assign(keys.begin(), keys.end());
  }

  // RAII rollback: whatever exits this scope without an explicit promotion
  // — a rollback verdict, a throwing hook, service shutdown mid-phase —
  // removes the shard assignments and drops the provisional generation, so
  // a canary can never outlive its cycle.
  struct RolloutGuard {
    const Hooks& hooks;
    ModelRegistry& registry;
    const std::string& machine;
    const std::set<std::size_t>& shards;
    std::atomic<bool>& active;
    bool assignments_active = false;
    bool candidate_staged = false;
    void end_assignments() {
      if (!assignments_active) return;
      assignments_active = false;
      for (const std::size_t shard : shards) hooks.end_canary(shard, machine);
    }
    ~RolloutGuard() {
      end_assignments();
      if (candidate_staged) {
        try {
          (void)registry.discard(machine);
        } catch (...) {
          // The slot vanished mid-phase; nothing left to roll back.
        }
      }
      active.store(false, std::memory_order_relaxed);
    }
  } rollout{hooks_, *registry_, machine, affected, canary_active_};

  const Clock::time_point canary_start = Clock::now();
  const std::uint64_t provisional = registry_->stage(machine, std::move(candidate));
  rollout.candidate_staged = true;
  canaries_.fetch_add(1, std::memory_order_relaxed);
  canary_active_.store(true, std::memory_order_relaxed);
  auto assignment = std::make_shared<const CanaryAssignment>(
      CanaryAssignment{machine, provisional, options_.canary.fraction, routes});
  for (const std::size_t shard : affected) hooks_.begin_canary(shard, assignment);
  rollout.assignments_active = true;
  if (options_.on_canary_begin) options_.on_canary_begin();

  // Wait for the sample window: the judge needs `min_samples` scored
  // observations per arm over the evidence routes — canary-served rows
  // report the provisional generation, incumbent-served rows the current
  // one (rows from older generations are not evidence for either arm) —
  // AND every evidence route scored at least once in each arm. The count
  // floor alone is not a verdict-worthy window: completions land in the
  // log in whatever order the pipelined shards drain, so the first
  // `min_samples` canary rows can all come from the routes a candidate
  // happens to serve well, and a mean over that slice would promote a
  // model whose damage is concentrated on the routes still in flight. The
  // wait is interruptible: shutdown rolls back promptly, and the phase
  // rolls back on `timeout` if traffic never fills the window.
  const Clock::time_point deadline = Clock::now() + options_.canary.timeout;
  std::size_t canary_n = 0, incumbent_n = 0;
  double canary_sum = 0.0, incumbent_sum = 0.0;
  bool window_reached = false;
  const std::set<std::uint64_t> route_set(routes.begin(), routes.end());
  // Re-scoring the arms means copying the resident log, which contends the
  // stripe mutexes the shard workers append under — only pay it on polls
  // where something was actually appended since the last scan.
  std::uint64_t scanned_appends = log_.appended() + 1;  // force the first scan
  for (;;) {
    const std::uint64_t appends = log_.appended();
    if (appends != scanned_appends) {
      scanned_appends = appends;
      canary_n = incumbent_n = 0;
      canary_sum = incumbent_sum = 0.0;
      std::set<std::uint64_t> canary_routes, incumbent_routes;
      for (const Observation& row : log_.snapshot()) {
        if (row.machine != machine || route_set.count(row.route_key) == 0) continue;
        if (row.model_generation == provisional) {
          ++canary_n;
          canary_sum += row.regret();
          canary_routes.insert(row.route_key);
        } else if (row.model_generation == current_generation) {
          ++incumbent_n;
          incumbent_sum += row.regret();
          incumbent_routes.insert(row.route_key);
        }
      }
      if (canary_n >= options_.canary.min_samples &&
          incumbent_n >= options_.canary.min_samples &&
          canary_routes.size() == route_set.size() &&
          incumbent_routes.size() == route_set.size()) {
        window_reached = true;
        break;
      }
    }
    if (Clock::now() >= deadline) break;
    heartbeat_.beat();  // a live canary sample window is progress, not a stall
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (queue_cv_.wait_for(lock, options_.canary.poll, [&] { return stopping_; })) break;
  }

  // The judge: live regret of the two arms on the same routes. Promotion
  // requires the full window — a phase that timed out (or was cut short by
  // shutdown) rolls back, never ships on partial evidence.
  const double canary_regret =
      canary_n == 0 ? 0.0 : canary_sum / static_cast<double>(canary_n);
  const double incumbent_regret =
      incumbent_n == 0 ? 0.0 : incumbent_sum / static_cast<double>(incumbent_n);
  const bool promote =
      window_reached &&
      canary_regret <= incumbent_regret + options_.canary.max_regret_margin;
  // Stage → split → sample window → verdict; the promote/rollback that acts
  // on the verdict gets its own span below.
  span(obs::Stage::kRetrainCanary, canary_start);

  std::uint64_t generation = 0;
  if (promote) {
    // Stop splitting before the promotion quiesce: post-promote traffic is
    // all-incumbent by construction, not by fallback.
    rollout.end_assignments();
    {
      const Clock::time_point swap_start = Clock::now();
      const Quiesce quiesce(affected, hooks_);
      if (options_.before_swap) options_.before_swap();
      generation = registry_->promote(machine);
      rollout.candidate_staged = false;
      drift_.notify_swap(machine);
      span(obs::Stage::kRetrainSwap, swap_start);
    }
    swaps_.fetch_add(1, std::memory_order_relaxed);
    canary_promoted_.fetch_add(1, std::memory_order_relaxed);
  } else {
    const Clock::time_point rollback_start = Clock::now();
    rollout.end_assignments();
    (void)registry_->discard(machine);
    rollout.candidate_staged = false;
    drift_.notify_abort(machine);  // abort backoff applies to rollbacks
    span(obs::Stage::kRetrainRollback, rollback_start);
    canary_rolled_back_.fetch_add(1, std::memory_order_relaxed);
    if (!window_reached) canary_timeouts_.fetch_add(1, std::memory_order_relaxed);
  }

  const std::lock_guard<std::mutex> lock(last_cycle_mutex_);
  last_pre_regret_ = pre_regret;
  last_post_regret_ = post_regret;
  last_initial_loss_ = report.initial_loss;
  last_final_loss_ = report.final_loss;
  last_generation_ = generation;
  if (promote)
    last_quiesced_shards_.assign(affected.begin(), affected.end());
  else
    last_quiesced_shards_.clear();
  last_holdout_current_ = current_holdout;
  last_holdout_candidate_ = candidate_holdout;
  last_canary_generation_ = provisional;
  last_canary_regret_ = canary_regret;
  last_canary_incumbent_regret_ = incumbent_regret;
  last_canary_samples_ = canary_n;
  return promote;
}

RetrainStatsSnapshot RetrainController::stats() const {
  RetrainStatsSnapshot s;
  s.observations = observations_.load(std::memory_order_relaxed);
  s.sampled_out = sampled_out_.load(std::memory_order_relaxed);
  s.triggers = drift_.triggers();
  s.cycles = cycles_.load(std::memory_order_relaxed);
  s.swaps = swaps_.load(std::memory_order_relaxed);
  s.aborted_validation = aborted_validation_.load(std::memory_order_relaxed);
  s.aborted_small_snapshot = aborted_small_snapshot_.load(std::memory_order_relaxed);
  s.aborted_no_drift = aborted_no_drift_.load(std::memory_order_relaxed);
  s.canaries = canaries_.load(std::memory_order_relaxed);
  s.canary_promoted = canary_promoted_.load(std::memory_order_relaxed);
  s.canary_rolled_back = canary_rolled_back_.load(std::memory_order_relaxed);
  s.canary_timeouts = canary_timeouts_.load(std::memory_order_relaxed);
  s.canary_active = canary_active_.load(std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(last_cycle_mutex_);
  s.last_pre_regret = last_pre_regret_;
  s.last_post_regret = last_post_regret_;
  s.last_initial_loss = last_initial_loss_;
  s.last_final_loss = last_final_loss_;
  s.last_generation = last_generation_;
  s.last_quiesced_shards = last_quiesced_shards_;
  s.last_holdout_current = last_holdout_current_;
  s.last_holdout_candidate = last_holdout_candidate_;
  s.last_canary_generation = last_canary_generation_;
  s.last_canary_regret = last_canary_regret_;
  s.last_canary_incumbent_regret = last_canary_incumbent_regret_;
  s.last_canary_samples = last_canary_samples_;
  return s;
}

bool RetrainController::wait_for_cycles(std::uint64_t cycles,
                                        std::chrono::steady_clock::duration timeout) const {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  (void)cycle_cv_.wait_for(lock, timeout, [&] {
    return stopping_ || cycles_.load(std::memory_order_relaxed) >= cycles;
  });
  return cycles_.load(std::memory_order_relaxed) >= cycles;
}

util::Table retrain_table(const RetrainStatsSnapshot& s) {
  util::Table table({"metric", "value"});
  table.add_row({"observations logged", std::to_string(s.observations)});
  table.add_row({"sampled out", std::to_string(s.sampled_out)});
  table.add_row({"drift triggers", std::to_string(s.triggers)});
  table.add_row({"retrain cycles", std::to_string(s.cycles)});
  table.add_row({"hot swaps", std::to_string(s.swaps)});
  table.add_row({"aborts (validation / small snapshot / no drift)",
                 std::to_string(s.aborted_validation) + " / " +
                     std::to_string(s.aborted_small_snapshot) + " / " +
                     std::to_string(s.aborted_no_drift)});
  table.add_row({"last cycle regret (realized -> candidate)",
                 util::fmt_percent(s.last_pre_regret) + " -> " +
                     util::fmt_percent(s.last_post_regret)});
  table.add_row({"last fine-tune loss", util::fmt_double(s.last_initial_loss) + " -> " +
                                            util::fmt_double(s.last_final_loss)});
  table.add_row({"last holdout regret (serving vs candidate)",
                 util::fmt_percent(s.last_holdout_current) + " vs " +
                     util::fmt_percent(s.last_holdout_candidate)});
  table.add_row({"canaries (promoted / rolled back / timeouts)",
                 std::to_string(s.canaries) + " (" + std::to_string(s.canary_promoted) +
                     " / " + std::to_string(s.canary_rolled_back) + " / " +
                     std::to_string(s.canary_timeouts) + ")" +
                     (s.canary_active ? " [active]" : "")});
  if (s.canaries > 0)
    table.add_row({"last canary verdict (candidate vs incumbent, n)",
                   util::fmt_percent(s.last_canary_regret) + " vs " +
                       util::fmt_percent(s.last_canary_incumbent_regret) + ", n=" +
                       std::to_string(s.last_canary_samples) + " @ gen " +
                       std::to_string(s.last_canary_generation)});
  table.add_row({"deployed generation", std::to_string(s.last_generation)});
  std::string quiesced;
  for (const std::size_t shard : s.last_quiesced_shards)
    quiesced += (quiesced.empty() ? "" : ", ") + std::to_string(shard);
  table.add_row({"last quiesced shards", quiesced.empty() ? "-" : quiesced});
  return table;
}

}  // namespace mga::serve::retrain
