#include "serve/retrain/observation_log.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "util/check.hpp"

namespace mga::serve::retrain {

ObservationLog::ObservationLog(ObservationLogOptions options)
    : options_(options), stripes_(options.shards) {
  MGA_CHECK_MSG(options_.shards > 0, "ObservationLog: need at least one stripe");
  MGA_CHECK_MSG(options_.capacity_per_shard > 0,
                "ObservationLog: stripe capacity must be positive");
  for (Stripe& stripe : stripes_) stripe.ring.reserve(options_.capacity_per_shard);
}

void ObservationLog::append(Observation observation) {
  observation.seq = appended_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = stripes_[observation.route_key % stripes_.size()];
  const std::lock_guard<obs::ProbedMutex> lock(stripe.mutex);
  if (stripe.ring.size() < options_.capacity_per_shard) {
    stripe.ring.push_back(std::move(observation));
  } else {
    stripe.ring[stripe.next] = std::move(observation);
    stripe.next = (stripe.next + 1) % options_.capacity_per_shard;
  }
}

std::size_t ObservationLog::size() const {
  std::size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    const std::lock_guard<obs::ProbedMutex> lock(stripe.mutex);
    total += stripe.ring.size();
  }
  return total;
}

std::vector<Observation> ObservationLog::snapshot() const {
  std::vector<Observation> all;
  for (const Stripe& stripe : stripes_) {
    const std::lock_guard<obs::ProbedMutex> lock(stripe.mutex);
    all.insert(all.end(), stripe.ring.begin(), stripe.ring.end());
  }
  std::sort(all.begin(), all.end(), [](const Observation& a, const Observation& b) {
    if (a.route_key != b.route_key) return a.route_key < b.route_key;
    if (a.input_bytes != b.input_bytes) return a.input_bytes < b.input_bytes;
    return a.seq < b.seq;
  });
  return all;
}

ObservationLog::TrainingSlice ObservationLog::to_dataset(
    const std::vector<Observation>& observations) {
  TrainingSlice slice;
  std::unordered_map<std::uint64_t, int> kernel_ids;  // route_key -> kernel_id
  for (const Observation& observation : observations) {
    const auto [it, inserted] =
        kernel_ids.emplace(observation.route_key, static_cast<int>(slice.kernels.size()));
    if (inserted) slice.kernels.push_back(observation.kernel);
    dataset::OmpSample sample;
    sample.kernel_id = it->second;
    sample.input_bytes = observation.input_bytes;
    sample.counters = observation.counters;
    sample.label = observation.oracle_label;
    sample.seconds = observation.seconds;
    sample.default_seconds = observation.default_seconds;
    slice.samples.push_back(std::move(sample));
  }
  return slice;
}

}  // namespace mga::serve::retrain
