// Pipeline primitives for the staged ServeShard engine (see DESIGN.md §11).
//
// `StageRing` is the inter-stage conduit: a bounded MPMC ring in the Vyukov
// style — one cache-line-padded sequence word per cell, producers and
// consumers claim cells with a single CAS on their own cursor and never
// touch a shared mutex. A full or empty ring fails fast (`try_push` /
// `try_pop` return immediately); blocking policy lives with the caller,
// which is what lets every stage worker combine "wait for my home ring" and
// "steal from a sibling ring" under one shard-wide `WorkSignal`.
//
// `WorkSignal` is the shard-wide eventcount the rings deliberately do not
// contain: every push (and every pop that frees space a blocked dispatcher
// may be waiting for) bumps an epoch and notifies. An idle worker samples
// the epoch, re-polls every ring it may serve, and parks only if the epoch
// is unchanged — the classic prepare/check/park pattern, so a push between
// the poll and the park can never be missed.
//
// The design follows the DPCP-p observation (PAPERS.md) that distributing
// queue-protocol work across stages — instead of funneling every worker
// through one mutex/CV spine — is what bounds tail wait: in the pipelined
// engine only the dispatcher touches the TieredQueue's lock, and the stage
// hand-offs here are lock-free.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace mga::serve {

/// Bounded lock-free MPMC ring. Capacity is rounded up to a power of two.
/// Element type must be movable; a moved-out slot is destroyed lazily when
/// the cell is reused (the ring holds `std::optional<T>` payloads).
template <typename T>
class StageRing {
 public:
  explicit StageRing(std::size_t capacity) {
    MGA_CHECK_MSG(capacity > 0, "StageRing: capacity must be positive");
    // Minimum 2: with a single cell the sequence arithmetic is ambiguous
    // (seq = pos+1 marks both "published, unconsumed" and "free for the
    // next producer"), so a second push would overwrite an unconsumed item.
    std::size_t pow2 = 2;
    while (pow2 < capacity) pow2 <<= 1;
    mask_ = pow2 - 1;
    cells_ = std::vector<Cell>(pow2);
    for (std::size_t i = 0; i < pow2; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  StageRing(const StageRing&) = delete;
  StageRing& operator=(const StageRing&) = delete;

  /// Non-blocking push; false when the ring is full. Takes the item by
  /// reference and moves from it only on success, so a failed push leaves
  /// the caller's item intact for retry (the payloads here are unique_ptr
  /// batches that must not be dropped on a full ring).
  bool try_push(T& item) {
    Cell* cell = nullptr;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) break;
      } else if (diff < 0) {
        return false;  // the cell still holds an unconsumed item: full
      } else {
        pos = head_.load(std::memory_order_relaxed);  // lost the claim race
      }
    }
    cell->payload.emplace(std::move(item));
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Non-blocking pop; nullopt when the ring is empty.
  std::optional<T> try_pop() {
    Cell* cell = nullptr;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) break;
      } else if (diff < 0) {
        return std::nullopt;  // the cell has not been published yet: empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);  // lost the claim race
      }
    }
    std::optional<T> item(std::move(cell->payload));
    cell->payload.reset();
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return item;
  }

  /// Instantaneous occupancy — advisory only under concurrency (cursors are
  /// read independently); exact once producers and consumers have quiesced,
  /// which is when the drain logic consults it.
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? head - tail : 0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  // One sequence word + payload per cell, padded so neighbouring cells do
  // not false-share under producer/consumer cursors sweeping the ring.
  struct alignas(64) Cell {
    std::atomic<std::size_t> seq{0};
    std::optional<T> payload;
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // producer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // consumer cursor
};

/// Shard-wide eventcount: `notify` after any state change a parked thread
/// may be waiting on (ring push, ring pop freeing space, lifecycle flags).
/// Waiters use prepare/check/park: sample `epoch()`, re-poll their rings,
/// then `wait(sampled)` — a notify between poll and park is never missed
/// because it advances the epoch the wait predicate re-reads under the lock.
class WorkSignal {
 public:
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  void notify() noexcept {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      epoch_.fetch_add(1, std::memory_order_release);
    }
    cv_.notify_all();
  }

  /// Park until the epoch moves past `seen`. Spurious wakes are fine — the
  /// caller re-polls its rings regardless.
  void wait(std::uint64_t seen) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return epoch_.load(std::memory_order_relaxed) != seen; });
  }

  /// Bounded park for callers that also watch a deadline (the dispatcher's
  /// linger flush). Returns after a notify, the deadline, or spuriously.
  void wait_until(std::uint64_t seen, std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_until(lock, deadline,
                   [&] { return epoch_.load(std::memory_order_relaxed) != seen; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace mga::serve
