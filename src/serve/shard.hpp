// ServeShard — the engine layer of the serve stack (see DESIGN.md §6, §11).
//
// One shard is a self-contained serving engine: it owns a three-lane
// TieredQueue, a FeatureCache, per-shard ServiceStats, and (by default) a
// staged software pipeline. A dedicated dispatcher thread forms micro-
// batches of same-(machine, kernel) co-arrivals off the TieredQueue —
// deadline-clamped linger windows, interactive expedite, adaptive EWMA
// clamp all live there — and hands sealed batches through lock-free stage
// rings: feature-extract → forward → publish. Stage workers have a home
// ring and steal from sibling rings when idle, so extraction of batch N+1
// overlaps the compiled-plan forward of batch N and no worker ever
// contends on the shared queue's mutex. `ServeOptions::pipeline = false`
// selects the v7 one-batch-per-worker loop (bit-identical results).
// The facade (`TuningService`) resolves machines, routes requests onto
// shards (`ShardRouter`), and aggregates their stats; the shard itself
// never looks at another shard — its queue, cache, linger EWMAs, and
// close/drain lifecycle are all shard-local, which is what keeps its cache
// hot under consistent-hash routing and makes per-shard quiesce (for
// online retraining) possible.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/exemplar.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "serve/feature_cache.hpp"
#include "serve/model_registry.hpp"
#include "serve/pipeline.hpp"
#include "serve/queue.hpp"
#include "serve/retrain/observation_log.hpp"
#include "serve/stats.hpp"
#include "serve/tenant.hpp"
#include "serve/ticket.hpp"

namespace mga::serve {

/// The always-on telemetry plane (DESIGN.md §12): SLO windows, tail-sampled
/// exemplar traces, the stall watchdog, and the optional HTTP introspection
/// endpoint. `enabled = true` keeps the cheap instruments live on every
/// request (heartbeats, SLO window counters, exemplar threshold checks);
/// verdicts only carry teeth once objectives are set, so a service with
/// default options is instrumented but never "violating" by accident.
struct TelemetryOptions {
  bool enabled = true;
  /// Per-tier objectives (indexed by Priority). Default-constructed
  /// objectives are disabled: the tier is tracked but never judged.
  std::array<obs::SloObjective, kNumTiers> objectives{};
  /// Window shape / burn thresholds for the SLO tracker.
  obs::SloOptions slo;
  /// Tail-sampling reservoir capacities (worst-k slow + error ring), per
  /// shard per window.
  std::size_t exemplar_slow = 16;
  std::size_t exemplar_errors = 16;
  std::chrono::milliseconds exemplar_window{60000};
  /// Stall watchdog cadence and default leash.
  std::chrono::milliseconds watchdog_period{100};
  std::chrono::milliseconds watchdog_stall_after{1000};
  /// Embedded HTTP endpoint (/metrics, /healthz, /slo, /exemplars).
  /// Off by default: the plane is always *collected*; serving it over a
  /// socket is an operator opt-in. Port 0 binds an ephemeral port.
  bool http = false;
  std::uint16_t http_port = 0;
  std::string http_address = "127.0.0.1";
};

struct ServeOptions {
  /// Worker threads *per shard*. Under the pipelined engine these are the
  /// stage workers (split between the extract and forward home rings when
  /// the explicit per-stage counts below are 0); the dispatcher thread is
  /// additional. Under `pipeline = false` this is the v7 pool size.
  std::size_t workers = 4;
  /// Staged pipeline engine (v8): a dedicated dispatcher forms batches off
  /// the TieredQueue and hands them through extract → forward → publish
  /// stage rings, so extraction of batch N+1 overlaps the forward of batch
  /// N and workers never touch the shared queue's mutex. `false` selects
  /// the v7 one-batch-per-worker loop (kept for A/B runs and as the
  /// contention baseline; results are bit-identical either way).
  bool pipeline = true;
  /// Stage workers homed on the extract / forward rings. 0/0 = split
  /// `workers` between the stages (extract gets the odd one; a single
  /// worker homes on extract and steals the rest). Idle stage workers
  /// steal from sibling rings, so a skewed mix cannot stall the pipe.
  std::size_t extract_workers = 0;
  std::size_t forward_workers = 0;
  /// Capacity (in batches) of each inter-stage ring, rounded up to a power
  /// of two. Deliberately small: the rings are conduits, not backlogs —
  /// the backlog belongs in the TieredQueue where admission policy sees it.
  std::size_t stage_queue_capacity = 64;
  /// Per-tier lane capacity when the matching `tier_capacity` entry is 0.
  std::size_t queue_capacity = 1024;
  /// Lane capacity per tier (indexed by Priority); 0 = `queue_capacity`.
  std::array<std::size_t, kNumTiers> tier_capacity{};
  /// Max requests fused into one grouped forward.
  std::size_t max_batch = 32;
  /// Time-based micro-batch linger: after popping a request, wait up to this
  /// long for same-kernel co-arrivals before firing the grouped forward.
  /// Clamped by the earliest deadline in the batch; zero = drain-only (fire
  /// immediately); interactive-tier heads never linger.
  std::chrono::steady_clock::duration linger{};
  /// Adaptive linger: clamp the effective window per kernel to
  /// `linger_ewma_factor x` the kernel's EWMA of inter-arrival times, so a
  /// kernel whose co-arrivals come every 100us stops holding a worker for a
  /// multi-ms global window. A kernel with no arrival history yet (cold:
  /// first request since the shard started or since its tracking entry was
  /// recycled) does not linger at all — there is no observed rate that
  /// predicts a co-arrival.
  bool adaptive_linger = false;
  double linger_ewma_factor = 4.0;
  /// Consecutive pops a lower lane may be passed over before it is served
  /// regardless of priority (see TieredQueue).
  std::size_t starvation_limit = 8;
  /// Shard-aware admission: when the target shard's *total* backlog (queued
  /// requests across all lanes) is at or above this, Reject and Shed
  /// submissions are refused even if their own lane still has room — a shard
  /// drowning in bulk must not keep accepting sheddable traffic just because
  /// the interactive lane is empty. Block submissions are unaffected (their
  /// backpressure is the lane wait itself). 0 disables the check.
  std::size_t shard_backlog_limit = 0;
  /// Feature-cache shape *per shard* (each ServeShard owns a private cache;
  /// consistent-hash routing keeps a kernel's traffic on one shard, so
  /// per-shard caches never duplicate entries in steady state).
  FeatureCacheOptions cache;
  /// Facade-level: number of ServeShards. 1 (the default) reproduces the
  /// unsharded service exactly. Ignored by ServeShard itself.
  std::size_t shards = 1;
  /// This shard's index within the facade, stamped on trace spans so a
  /// Perfetto view groups events per shard. The facade sets it when it
  /// constructs its shard set; standalone shards keep 0.
  std::size_t shard_index = 0;
  /// Execute the forward stage through the registry's compiled runtime plan
  /// when the resolved generation carries one (see src/runtime). The
  /// interpreter remains the fallback for generations whose compile failed
  /// (or threw at execute time) and the bit-identity reference — flipping
  /// this off changes timing, never results.
  bool compiled_runtime = true;
  /// Facade-level: registry entry used when a request names no machine.
  /// Empty = only legal when the registry holds exactly one entry. Ignored
  /// by ServeShard itself (it requires resolved machines).
  std::string default_machine;
  /// Facade-level: the online-retraining loop (observation logging, drift
  /// triggers, per-shard quiesce + hot swap — see DESIGN.md §8). Ignored by
  /// ServeShard itself; the facade owns the RetrainController and hands each
  /// shard an observation hook.
  retrain::RetrainOptions retrain;
  /// Multi-tenant QoS (DESIGN.md §13): per-tenant in-flight quotas plus
  /// weighted fair admission under contention, enforced at each shard's
  /// admission gate. An empty tenant list disables the layer entirely (no
  /// governor, no per-tenant stats — the submit path is untouched). The
  /// facade normalizes the policy (implicit "default" tenant at index 0)
  /// before shards copy it.
  TenantPolicy tenant;
  /// Facade-level: record every routed submit into a bounded in-memory
  /// trace ring (load::TraceRecorder) for later save/replay — the serve-side
  /// sibling of the retrain ObservationLog. Ignored by ServeShard itself.
  bool record_trace = false;
  std::size_t record_trace_capacity = std::size_t{1} << 16;
  /// Always-on telemetry plane (SLO windows, exemplars, watchdog, /metrics).
  TelemetryOptions telemetry;
  /// Test seam: invoked at the top of every pipelined stage execution with
  /// the stage index (kPipelineExtract/...). Lets a test wedge one stage
  /// (block in the hook) to validate the stall watchdog without touching
  /// production code paths. Null in production.
  std::function<void(std::size_t)> stage_hook;
};

struct TuneRequest {
  corpus::KernelSpec kernel;
  double input_bytes = 0.0;
  /// Pre-collected profiling counters; when absent the service profiles once
  /// (memoized per (kernel, input) in the feature cache).
  std::optional<hwsim::PapiCounters> counters;
  /// Registry entry to serve this request with; empty = the default.
  std::string machine;
  /// QoS: priority tier, admission policy, deadline.
  RequestOptions options;
  /// Request-tracing context (id 0 = untraced). The facade stamps it at
  /// submit when obs is enabled; the id rides through to TuneResult so a
  /// caller can find its request in an exported trace.
  obs::TraceContext trace;
  /// Route key (machine ⊕ kernel fingerprint), stamped by the facade at
  /// submit — the same key the router and the canary split use. The SLO
  /// tracker uses it for per-route worst-offender windows; 0 = unrouted
  /// (standalone-shard submissions), which the tracker skips.
  std::uint64_t route = 0;
  /// Tenant index under the service's TenantPolicy, resolved by the facade
  /// from `options.tenant` (0 = the default tenant). ServeShard trusts it
  /// the way it trusts `machine`; out-of-range values are billed to the
  /// default tenant.
  std::uint32_t tenant = 0;
};

class ServeShard {
 public:
  /// `options.shards`, `options.default_machine` and `options.retrain` are
  /// facade concerns and ignored here; everything else shapes this shard's
  /// queue, workers, cache and linger policy. `observer`, when set, is
  /// called once per served request on the worker thread after the batch's
  /// outcomes are published (the retrain subsystem's observation feed).
  /// `watchdog`, when set, receives this shard's liveness probes
  /// (dispatcher, stage pools, legacy worker pool) at construction; it must
  /// be stopped before the shard is destroyed (the facade owns both and
  /// tears the watchdog down first).
  ServeShard(std::shared_ptr<ModelRegistry> registry, const ServeOptions& options,
             retrain::ObservationFn observer = {}, obs::StallWatchdog* watchdog = nullptr);
  ~ServeShard();

  ServeShard(const ServeShard&) = delete;
  ServeShard& operator=(const ServeShard&) = delete;

  /// Admit `request` under its RequestOptions and bind the outcome to
  /// `state`. Precondition: `request.machine` names a registry entry (the
  /// facade resolves defaults first). Never throws for service errors —
  /// admission refusals and shutdown resolve the state with a ServeError.
  /// Records all submit/admission stats on this shard.
  void submit(TuneRequest request, std::shared_ptr<TicketState> state);

  /// Pause this shard's workers: they finish the batches they already
  /// claimed and then idle; submissions keep queueing. Pauses *count*: the
  /// facade's operator pause and the retrain controller's quiesce can
  /// overlap, and the shard runs again only when every pauser has resumed.
  /// `resume` releases one outstanding hold — callers must pair their own
  /// calls (an excess resume with no hold outstanding is a no-op, but an
  /// unpaired one releases whichever hold is left). `shutdown` overrides
  /// any pause so workers always drain.
  void pause();
  void resume();

  /// `close` seals the queue and wakes paused workers so they drain;
  /// `join` reaps them. `shutdown` = close + join; all idempotent. The
  /// facade closes every shard before joining any, so shards drain their
  /// backlogs concurrently.
  void close();
  void join();
  void shutdown();

  /// Install a canary assignment: from now on, submissions for the
  /// assignment's (machine, routes) are split between the incumbent and the
  /// staged candidate generation by a per-route weighted round-robin at
  /// `assignment->fraction`. One assignment at a time (retrain cycles are
  /// serialized); installing resets the round-robin counters. Requests
  /// already queued keep the arm they were assigned at submit — or the
  /// incumbent if they predate the assignment.
  void set_canary(std::shared_ptr<const retrain::CanaryAssignment> assignment);

  /// Remove the active assignment when it belongs to `machine` (no-op
  /// otherwise). Queued canary-arm requests fall back gracefully at batch
  /// time: a promoted candidate serves them as the new incumbent, a rolled-
  /// back one is replaced by the incumbent.
  void clear_canary(const std::string& machine);

  [[nodiscard]] ServiceStatsSnapshot stats_snapshot() const;
  /// Direct counter access for facade-side accounting (e.g. attributing a
  /// machine-resolution failure to the shard the request routed to).
  [[nodiscard]] ServiceStats& stats() noexcept { return stats_; }

  /// The tenant admission governor; null when no TenantPolicy is set.
  [[nodiscard]] const TenantGovernor* tenants() const noexcept { return governor_.get(); }

  // ---- chaos seams (bench/test only — DESIGN.md §13) --------------------
  //
  // Simulate a dispatcher crash: the dispatcher thread exits at its next
  // wake WITHOUT signalling completion — exactly what a wedged or dead
  // thread looks like from outside. Queued and forming requests are NOT
  // lost: forming members are stashed and re-ingested by `revive`, queued
  // ones sit in the TieredQueue until then (or are swept/typed-resolved on
  // shutdown — `close` revives a dead dispatcher so the drain contract
  // holds). The watchdog's dispatcher probe sees pending work with no
  // heartbeats and turns kViolating after its leash; revive restores beats
  // and the verdict recovers. Not meaningful under `pipeline = false`.

  /// Returns false when the engine is legacy, the shard is closed, or a
  /// kill is already in effect.
  bool chaos_kill_dispatcher();
  /// Restart after a chaos kill: joins the dead thread, re-ingests stashed
  /// forming members, resumes dispatch. False when no kill is in effect.
  bool revive_dispatcher();

  /// Telemetry plane accessors; null when telemetry is disabled.
  [[nodiscard]] const obs::SloTracker* slo() const noexcept { return slo_.get(); }
  [[nodiscard]] obs::ExemplarReservoir* exemplars() noexcept { return exemplars_.get(); }
  /// This shard's SLO verdict as of `now` (kOk snapshot when disabled).
  [[nodiscard]] obs::SloTracker::Snapshot slo_snapshot(
      std::chrono::steady_clock::time_point now = std::chrono::steady_clock::now()) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    TuneRequest request;  // request.machine resolved at submit
    std::shared_ptr<TicketState> state;
    std::uint64_t group_key = 0;
    /// Arrival-tracking key for adaptive linger: machine ⊕ full structural
    /// fingerprint, unlike `group_key`'s cheap machine+name hash — same-name
    /// specs with different params cannot batch together, so they must not
    /// share an arrival history either. 0 when adaptive linger is off.
    std::uint64_t linger_key = 0;
    Priority tier = Priority::kNormal;
    /// Canary arm, decided at submit: 0 = incumbent, else the provisional
    /// generation to serve this request with. Folded into `group_key`, so a
    /// batch is all-incumbent or all-canary — never torn.
    std::uint64_t canary_generation = 0;
    /// True when an active assignment covered this request's route at
    /// submit, whichever arm it drew (split-path stats attribution).
    bool canaried_route = false;
    Clock::time_point enqueued;
    Clock::time_point deadline_at;  // time_point::max() when no deadline
    /// When the dispatcher popped this request off the TieredQueue — the
    /// admission_wait / linger_wait trace boundary. Unused in legacy mode.
    Clock::time_point popped{};
  };

  /// A sealed micro-batch travelling through the stage rings. Built by the
  /// dispatcher (members only), filled in by the extract stage (resolution,
  /// cached features, per-member counters), consumed by the forward stage
  /// (labels → configs), and retired by the publish stage. Timestamps mark
  /// every stage boundary so publish can attribute the full latency —
  /// including inter-stage ring time — as trace sub-spans.
  struct PipelineBatch {
    std::vector<Pending> members;
    Clock::time_point sealed{};
    Clock::time_point extract_start{};
    Clock::time_point cache_done{};
    Clock::time_point profile_done{};
    Clock::time_point forward_start{};
    Clock::time_point labels_done{};
    Clock::time_point forward_done{};
    ModelRegistry::Resolved resolved;
    std::shared_ptr<const FeatureCache::Entry> entry;
    std::vector<hwsim::PapiCounters> counters;
    std::vector<int> labels;
    std::vector<hwsim::OmpConfig> configs;
    bool cache_hit = false;
    bool used_compiled = false;
    bool plan_layout_hit = false;
  };

  /// Per-kernel arrival-rate tracking for the adaptive linger clamp.
  struct ArrivalStats {
    Clock::time_point last{};
    double ewma_us = 0.0;
    std::uint64_t count = 0;
  };

  void worker_loop();
  /// Pipelined engine (DESIGN.md §11). The dispatcher is the only thread
  /// that ever touches the TieredQueue's lock: it pops arrivals, groups
  /// them into forming batches per group_key (full-spec match within a
  /// hash chain), runs the linger/deadline/expedite policy, and seals
  /// batches into the extract ring. Stage workers claim publish-first,
  /// then their home ring, then steal the sibling's; a worker that cannot
  /// push downstream helps drain the full ring instead of parking (with a
  /// small pool it may be that ring's only consumer).
  void dispatcher_loop();
  void stage_worker_loop(std::size_t home);
  bool claim_and_run(std::size_t home);
  void run_stage(std::size_t stage, std::unique_ptr<PipelineBatch> batch);
  void run_extract(std::unique_ptr<PipelineBatch> batch);
  void run_forward(std::unique_ptr<PipelineBatch> batch);
  void run_publish(std::unique_ptr<PipelineBatch> batch);
  void push_or_help(std::size_t dest, std::unique_ptr<PipelineBatch> batch);
  /// Resolve every still-claimable member with `error`; the rest are
  /// cancelled. The batch leaves the pipeline without reaching publish.
  void fail_batch(PipelineBatch& batch, const ServeError& error);
  /// One batch left the pipeline (published, failed, or fully swept).
  void finish_batch();
  /// Resolve `pending` when it is cancelled or past its deadline, recording
  /// the per-tier counter. True when the request was dropped.
  bool sweep(Pending& pending, Clock::time_point now);
  /// Wait for same-kernel co-arrivals until `window` past `pop_time` (or the
  /// earliest batch deadline) closes or the batch fills.
  template <typename Match>
  void linger_batch(std::vector<Pending>& batch, const Match& match,
                    Clock::time_point pop_time, Clock::duration window);
  void process_batch(std::vector<Pending>& batch);
  /// Fold a new arrival of `linger_key` into its inter-arrival EWMA.
  void note_arrival(std::uint64_t linger_key, Clock::time_point now);
  /// Linger window for a batch headed by `linger_key`: `options.linger`, or
  /// the adaptive clamp `min(linger, factor x EWMA)` (zero when cold).
  [[nodiscard]] Clock::duration effective_linger(std::uint64_t linger_key) const;

  /// Register this shard's liveness probes with `watchdog` (ctor-time).
  void register_probes(obs::StallWatchdog& watchdog);
  /// Telemetry tail work for one served/failed request: SLO window record
  /// plus (threshold-gated) exemplar capture. No-ops when telemetry is off.
  void record_outcome(const Pending& pending, double latency_us, bool error,
                      obs::Exemplar::Kind kind, Clock::time_point now,
                      const PipelineBatch* batch);
  /// Build the span chain for an exemplar from batch stage timestamps,
  /// stamped with the exemplar's trace id (minted when the request carried
  /// none).
  [[nodiscard]] std::vector<obs::TraceEvent> exemplar_spans(const Pending& pending,
                                                           std::uint64_t id,
                                                           Clock::time_point now,
                                                           const PipelineBatch* batch) const;

  std::shared_ptr<ModelRegistry> registry_;
  ServeOptions options_;
  retrain::ObservationFn observer_;  // set at construction, read by workers
  FeatureCache cache_;
  ServiceStats stats_;
  /// Multi-tenant admission gate; null when options.tenant is empty.
  std::unique_ptr<TenantGovernor> governor_;
  TieredQueue<Pending> queue_;
  /// Telemetry plane (null/zeroed when options.telemetry.enabled is false).
  std::unique_ptr<obs::SloTracker> slo_;
  std::unique_ptr<obs::ExemplarReservoir> exemplars_;
  obs::Heartbeat dispatcher_beat_;
  std::array<obs::Heartbeat, kNumPipelineStages> stage_beats_;
  obs::Heartbeat worker_beat_;  // legacy (pipeline=false) pool
  /// Requests popped off the queue and held in forming (unsealed) batches —
  /// dispatcher-pending work the queue depth no longer shows.
  std::atomic<std::size_t> forming_count_{0};
  /// Inter-stage conduits (pipelined mode only), indexed by kPipeline*.
  using BatchRing = StageRing<std::unique_ptr<PipelineBatch>>;
  std::array<std::unique_ptr<BatchRing>, kNumPipelineStages> rings_;
  WorkSignal work_signal_;
  std::thread dispatcher_;
  /// Batches sealed into the rings and not yet retired. Workers exit when
  /// `dispatcher_done_` and this reaches zero — the pipeline is drained.
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<bool> dispatcher_done_{false};
  std::vector<std::thread> workers_;
  std::mutex pause_mutex_;
  std::condition_variable pause_cv_;
  std::size_t pause_count_ = 0;  // workers run only when 0 (or draining)
  bool draining_ = false;        // set by close(): drain regardless of pauses
  std::mutex lifecycle_mutex_;
  bool closed_ = false;
  bool joined_ = false;
  /// Chaos seam: when set, the dispatcher exits at its next wake without
  /// setting dispatcher_done_ (so the shard looks exactly like one whose
  /// dispatcher thread died). Forming members are stashed in `orphaned_`
  /// for re-ingest on revive.
  std::atomic<bool> chaos_dispatcher_kill_{false};
  bool dispatcher_dead_ = false;  // guarded by lifecycle_mutex_
  std::vector<Pending> orphaned_;  // guarded by lifecycle_mutex_
  /// Mirror of orphaned_.size() for the watchdog's lock-free pending probe.
  std::atomic<std::size_t> orphaned_count_{0};
  mutable std::mutex arrivals_mutex_;
  std::unordered_map<std::uint64_t, ArrivalStats> arrivals_;
  /// Active canary assignment (null outside rollout phases) and the
  /// per-route weighted round-robin cursors behind the traffic split.
  mutable std::mutex canary_mutex_;
  std::shared_ptr<const retrain::CanaryAssignment> canary_;
  std::unordered_map<std::uint64_t, std::uint64_t> canary_counts_;
};

}  // namespace mga::serve
