// Replay engine: drive a TuningService through a LoadTrace (DESIGN.md §13).
//
// `replay` is the open-loop half of the scenario harness: it walks a trace
// (recorded in production via TraceRecorder, or synthesized by a shaper),
// maps each record onto a concrete TuneRequest through a ReplayCatalog, and
// submits on the trace's own schedule — never waiting for outcomes before
// the next arrival, so an overloaded service sees exactly the pressure the
// original traffic applied (closed-loop benches self-throttle and hide
// saturation behavior; this one does not). Outcomes land asynchronously in
// a sample log the caller mines afterwards (windowed p95, per-tenant
// goodput, recovery curves).
//
// Determinism: with `speed = 0` (no pacing) the submissions happen in trace
// order on the calling thread, so every admission decision — tenant
// governor, lane capacity, backlog limit — is a pure function of the trace
// and the service configuration. Replaying the same trace against a paused
// service twice yields identical per-tenant admission counts
// (tests/test_scenario.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/load/trace.hpp"
#include "serve/service.hpp"

namespace mga::serve::load {

/// Maps a trace's route encodings onto submittable work. Synthetic routes
/// decode as kernel = (route >> kRouteInputBits) % kernels.size(), input =
/// (route & mask) % input_bytes.size(); recorded production route keys are
/// hashes, which the same decode spreads across the catalog — route
/// diversity survives, exact kernel identity does not (it cannot: a trace
/// stores keys, not specs).
struct ReplayCatalog {
  std::vector<corpus::KernelSpec> kernels;
  std::vector<double> input_bytes;
  /// Registry entry every replayed request targets; empty = service default.
  std::string machine;
};

struct ReplayOptions {
  /// Time dilation: 1 = the trace's own pacing, 2 = twice as fast, 0 = no
  /// sleeps at all (every submission back-to-back, the deterministic mode).
  double speed = 1.0;
  /// Admission mode stamped on every request. Open-loop replay defaults to
  /// kReject: a blocking submit would stall the arrival schedule and turn
  /// the replay closed-loop.
  Admission admission = Admission::kReject;
  /// Tenant index → RequestOptions::tenant name. Empty (or out-of-range)
  /// indices submit unnamed and land on the service's default tenant.
  std::vector<std::string> tenant_names;
  /// Wait for every outcome before returning (off lets a test submit
  /// against a paused service and inspect admission state mid-flight).
  bool wait_for_outcomes = true;
};

/// One replayed request's fate.
struct ReplaySample {
  std::uint64_t arrival_us = 0;   ///< Scheduled offset (from the trace).
  double done_offset_us = 0.0;    ///< Resolution time, offset from replay start.
  double latency_us = 0.0;        ///< Completion latency; 0 for error outcomes.
  std::uint32_t tenant = 0;
  bool ok = false;
  bool rejected = false;  ///< Typed kRejected (admission/quota/share/shed).
};

struct TenantReplayStats {
  std::string name;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;  ///< Non-rejected error outcomes.
};

struct ReplayReport {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  double duration_s = 0.0;  ///< Wall time of the replay (submit → last outcome).
  /// Indexed by trace tenant id (size = max id seen + 1).
  std::vector<TenantReplayStats> tenants;
  /// Every request's fate, submission order. `submitted` always equals
  /// `samples.size()` once outcomes were waited for.
  std::vector<ReplaySample> samples;
};

/// Run the trace against `service`. Requires a non-empty catalog.
[[nodiscard]] ReplayReport replay(TuningService& service, const LoadTrace& trace,
                                  const ReplayCatalog& catalog,
                                  const ReplayOptions& options = {});

}  // namespace mga::serve::load
