#include "serve/load/shaper.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace mga::serve::load {

std::uint64_t Shaper::pick(util::Rng& rng, std::size_t kernels, std::size_t inputs) const {
  const std::uint64_t kernel = rng.uniform_index(kernels == 0 ? 1 : kernels);
  const std::uint64_t input = rng.uniform_index(inputs == 0 ? 1 : inputs);
  return (kernel << kRouteInputBits) | input;
}

DiurnalShaper::DiurnalShaper(double period_s, double depth)
    : period_s_(period_s), depth_(depth) {
  MGA_CHECK_MSG(period_s_ > 0.0, "DiurnalShaper: period must be positive");
  MGA_CHECK_MSG(depth_ >= 0.0 && depth_ < 1.0, "DiurnalShaper: depth must be in [0, 1)");
}

double DiurnalShaper::rate_multiplier(double t_s) const {
  constexpr double kTwoPi = 6.283185307179586;
  return 1.0 + depth_ * std::sin(kTwoPi * t_s / period_s_);
}

FlashCrowdShaper::FlashCrowdShaper(double start_s, double duration_s, double magnitude)
    : start_s_(start_s), duration_s_(duration_s), magnitude_(magnitude) {
  MGA_CHECK_MSG(duration_s_ > 0.0, "FlashCrowdShaper: duration must be positive");
  MGA_CHECK_MSG(magnitude_ >= 1.0, "FlashCrowdShaper: magnitude must be >= 1");
}

double FlashCrowdShaper::rate_multiplier(double t_s) const {
  return t_s >= start_s_ && t_s < start_s_ + duration_s_ ? magnitude_ : 1.0;
}

ZipfShaper::ZipfShaper(double exponent, std::size_t max_ranks)
    : exponent_(exponent), max_ranks_(max_ranks) {
  MGA_CHECK_MSG(exponent_ > 0.0, "ZipfShaper: exponent must be positive");
  MGA_CHECK_MSG(max_ranks_ > 0, "ZipfShaper: max_ranks must be positive");
}

std::uint64_t ZipfShaper::pick(util::Rng& rng, std::size_t kernels,
                               std::size_t inputs) const {
  const std::size_t ranks = std::min(std::max<std::size_t>(kernels, 1), max_ranks_);
  if (cdf_ranks_ != ranks) {
    // Only called from synthesize's single thread; a second catalog size
    // just rebuilds.
    cdf_.resize(ranks);
    double sum = 0.0;
    for (std::size_t r = 0; r < ranks; ++r) {
      sum += 1.0 / std::pow(static_cast<double>(r + 1), exponent_);
      cdf_[r] = sum;
    }
    for (double& c : cdf_) c /= sum;
    cdf_ranks_ = ranks;
  }
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto kernel = static_cast<std::uint64_t>(it - cdf_.begin());
  const std::uint64_t input = rng.uniform_index(inputs == 0 ? 1 : inputs);
  return (kernel << kRouteInputBits) | input;
}

std::uint64_t CacheBusterShaper::pick(util::Rng&, std::size_t kernels,
                                      std::size_t inputs) const {
  const std::uint64_t n = cursor_++;
  const std::uint64_t k = kernels == 0 ? 1 : kernels;
  const std::uint64_t i = inputs == 0 ? 1 : inputs;
  // Stride through kernels fastest: adjacent arrivals always change kernel,
  // and the input cycles once per full kernel sweep — no two consecutive
  // requests share a batch group or a cache entry (for k > 1).
  return ((n % k) << kRouteInputBits) | ((n / k) % i);
}

LoadTrace synthesize(const Shaper& shaper, const SynthesisOptions& options) {
  MGA_CHECK_MSG(options.rate_per_s > 0.0, "synthesize: rate must be positive");
  MGA_CHECK_MSG(options.duration_s > 0.0, "synthesize: duration must be positive");
  util::Rng rng(options.seed);
  const auto draw_mix = [&rng](const std::vector<double>& mix) -> std::size_t {
    if (mix.empty()) return 0;
    double total = 0.0;
    for (const double w : mix) total += w;
    if (total <= 0.0) return 0;
    double u = rng.uniform() * total;
    for (std::size_t i = 0; i < mix.size(); ++i) {
      u -= mix[i];
      if (u < 0.0) return i;
    }
    return mix.size() - 1;
  };
  LoadTrace trace;
  double t_s = 0.0;
  for (;;) {
    // Non-homogeneous Poisson by local rate: exponential gap at the rate in
    // effect *now*. For the step/smooth shapers here that tracks the target
    // curve within one inter-arrival gap, which is all replay needs.
    const double rate = options.rate_per_s * std::max(shaper.rate_multiplier(t_s), 1e-9);
    const double u = std::max(rng.uniform(), 1e-12);  // avoid log(0)
    t_s += -std::log(u) / rate;
    if (t_s >= options.duration_s) break;
    TraceRecord r;
    r.arrival_us = static_cast<std::uint64_t>(t_s * 1e6);
    r.route = shaper.pick(rng, options.kernels, options.inputs);
    r.deadline_us = options.deadline_us;
    r.tenant = static_cast<std::uint32_t>(draw_mix(options.tenant_mix));
    r.tier = options.tier_mix.empty() ? std::uint8_t{1}
                                      : static_cast<std::uint8_t>(draw_mix(options.tier_mix));
    trace.records.push_back(r);
  }
  return trace;
}

}  // namespace mga::serve::load
