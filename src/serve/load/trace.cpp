#include "serve/load/trace.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/check.hpp"

namespace mga::serve::load {

namespace {

constexpr std::uint32_t kMagic = 0x4d474154;  // "MGAT"
constexpr std::uint32_t kVersion = 1;
/// Packed on-disk record: arrival_us, route, deadline_us, tenant, tier.
constexpr std::size_t kRecordBytes = 8 + 8 + 8 + 4 + 1;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

[[nodiscard]] std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

[[nodiscard]] std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  MGA_CHECK_MSG(capacity_ > 0, "TraceRecorder: capacity must be positive");
  ring_.reserve(capacity_);
}

void TraceRecorder::record(std::uint64_t now_us, std::uint64_t route,
                           std::uint64_t deadline_us, std::uint32_t tenant,
                           std::uint8_t tier) {
  TraceRecord r;
  r.arrival_us = now_us;  // absolute until snapshot rebases
  r.route = route;
  r.deadline_us = deadline_us;
  r.tenant = tenant;
  r.tier = tier;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(r);
  } else {
    // Ring wrap: overwrite the oldest — the retained window slides forward,
    // which is exactly the "last N arrivals before the incident" semantics.
    ring_[head_] = r;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
}

LoadTrace TraceRecorder::snapshot() const {
  LoadTrace trace;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    trace.records.reserve(ring_.size());
    // Oldest first: [head_, end) then [0, head_) once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i)
      trace.records.push_back(ring_[(head_ + i) % ring_.size()]);
    trace.dropped = dropped_;
  }
  if (trace.records.empty()) return trace;
  // Rebase to the window's first arrival; recorded clocks are monotone per
  // submitter but submits race, so clamp the occasional out-of-order pair.
  const std::uint64_t base = trace.records.front().arrival_us;
  for (TraceRecord& r : trace.records)
    r.arrival_us = r.arrival_us >= base ? r.arrival_us - base : 0;
  return trace;
}

std::size_t TraceRecorder::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

void save_trace(const LoadTrace& trace, const std::string& path) {
  std::string out;
  out.reserve(16 + trace.records.size() * kRecordBytes);
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u64(out, trace.records.size());
  for (const TraceRecord& r : trace.records) {
    put_u64(out, r.arrival_us);
    put_u64(out, r.route);
    put_u64(out, r.deadline_us);
    put_u32(out, r.tenant);
    out.push_back(static_cast<char>(r.tier));
  }
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw std::runtime_error("save_trace: cannot open '" + path + "'");
  file.write(out.data(), static_cast<std::streamsize>(out.size()));
  if (!file) throw std::runtime_error("save_trace: write to '" + path + "' failed");
}

LoadTrace load_trace(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("load_trace: cannot open '" + path + "'");
  std::string data((std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  if (data.size() < 16 || get_u32(p) != kMagic)
    throw std::runtime_error("load_trace: '" + path + "' is not a load trace");
  if (get_u32(p + 4) != kVersion)
    throw std::runtime_error("load_trace: '" + path + "' has an unsupported version");
  const std::uint64_t count = get_u64(p + 8);
  if (data.size() != 16 + count * kRecordBytes)
    throw std::runtime_error("load_trace: '" + path + "' is truncated or corrupt");
  LoadTrace trace;
  trace.records.reserve(count);
  const unsigned char* r = p + 16;
  for (std::uint64_t i = 0; i < count; ++i, r += kRecordBytes) {
    TraceRecord record;
    record.arrival_us = get_u64(r);
    record.route = get_u64(r + 8);
    record.deadline_us = get_u64(r + 16);
    record.tenant = get_u32(r + 24);
    record.tier = r[28];
    trace.records.push_back(record);
  }
  return trace;
}

}  // namespace mga::serve::load
