// Traffic shapers: synthetic LoadTrace generators (DESIGN.md §13).
//
// A `Shaper` bends an open-loop Poisson arrival process two ways: a
// time-varying rate multiplier (diurnal ramp, flash crowd) and a popularity
// law over the synthetic route catalog (Zipf skew, adversarial
// cache-busting). `synthesize` folds one shaper plus a base rate and tenant
// mix into a LoadTrace, so the scenario bench and tests drive the *same*
// replay machinery whether the trace came from production recording or from
// a generator — a flash crowd is just a trace nobody had to suffer through
// first.
//
// Synthetic routes use the catalog encoding `(kernel_idx << 20) | input_idx`
// that ReplayCatalog (replay.hpp) decodes; real recorded routes hash into
// the same decode modulo the catalog, so replaying a production trace
// against a synthetic catalog still exercises realistic route diversity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/load/trace.hpp"
#include "util/rng.hpp"

namespace mga::serve::load {

/// Shift synthetic route encodings by: route = (kernel << kRouteInputBits) | input.
inline constexpr std::uint64_t kRouteInputBits = 20;

class Shaper {
 public:
  virtual ~Shaper() = default;
  /// Arrival-rate multiplier at `t_s` seconds into the trace (>= 0; 1 = the
  /// base rate).
  [[nodiscard]] virtual double rate_multiplier(double t_s) const = 0;
  /// Draw one (kernel_idx, input_idx) pair from the popularity law.
  [[nodiscard]] virtual std::uint64_t pick(util::Rng& rng, std::size_t kernels,
                                           std::size_t inputs) const;
};

/// Uniform popularity, flat rate — the control arm every other shaper is
/// compared against.
class SteadyShaper : public Shaper {
 public:
  [[nodiscard]] double rate_multiplier(double) const override { return 1.0; }
};

/// Sinusoidal day curve compressed into the trace duration: rate swings
/// between (1 - depth) and (1 + depth) of base over `period_s`.
class DiurnalShaper : public Shaper {
 public:
  DiurnalShaper(double period_s, double depth);
  [[nodiscard]] double rate_multiplier(double t_s) const override;

 private:
  double period_s_;
  double depth_;
};

/// Flash crowd: flat base rate, then a `magnitude`x spike over
/// [start_s, start_s + duration_s) — the tenant-fairness stress shape (the
/// spike saturates admission, which is when the governor's weighted shares
/// must hold).
class FlashCrowdShaper : public Shaper {
 public:
  FlashCrowdShaper(double start_s, double duration_s, double magnitude);
  [[nodiscard]] double rate_multiplier(double t_s) const override;

 private:
  double start_s_;
  double duration_s_;
  double magnitude_;
};

/// Zipf(s) popularity over the kernel catalog: rank-r kernel drawn with
/// probability ∝ 1/r^s. Flat rate. High skew concentrates traffic on few
/// routes — the feature cache's best case and the batcher's densest groups.
class ZipfShaper : public Shaper {
 public:
  ZipfShaper(double exponent, std::size_t max_ranks = 1024);
  [[nodiscard]] double rate_multiplier(double) const override { return 1.0; }
  [[nodiscard]] std::uint64_t pick(util::Rng& rng, std::size_t kernels,
                                   std::size_t inputs) const override;

 private:
  double exponent_;
  std::size_t max_ranks_;
  /// Normalized CDF over min(kernels, max_ranks) ranks, built lazily per
  /// catalog size (the bench uses one size; keep it simple and rebuild).
  mutable std::vector<double> cdf_;
  mutable std::size_t cdf_ranks_ = 0;
};

/// Adversarial cache-buster: walks the (kernel, input) catalog round-robin
/// so consecutive arrivals never share a feature-cache entry or a batch
/// group — the worst case for both. Flat rate.
class CacheBusterShaper : public Shaper {
 public:
  [[nodiscard]] double rate_multiplier(double) const override { return 1.0; }
  [[nodiscard]] std::uint64_t pick(util::Rng& rng, std::size_t kernels,
                                   std::size_t inputs) const override;

 private:
  mutable std::uint64_t cursor_ = 0;
};

struct SynthesisOptions {
  /// Base arrival rate (requests/second) before the shaper's multiplier.
  double rate_per_s = 1000.0;
  double duration_s = 1.0;
  /// Synthetic catalog shape the route encodings draw from.
  std::size_t kernels = 8;
  std::size_t inputs = 4;
  /// Per-tenant arrival weights; index = tenant id in the trace. Empty = all
  /// traffic on tenant 0. These weight *offered* load (who asks), not the
  /// TenantPolicy's admission weights (who gets in) — the fairness bench
  /// deliberately offers equal load to unequal-weight tenants.
  std::vector<double> tenant_mix;
  /// Tier mix (indexed by Priority); empty = everything kNormal.
  std::vector<double> tier_mix;
  /// Deadline stamped on every request; 0 = none.
  std::uint64_t deadline_us = 0;
  std::uint64_t seed = 42;
};

/// Generate a trace: exponential inter-arrivals thinned/boosted by the
/// shaper's rate multiplier, routes from its popularity law, tenants and
/// tiers drawn from the mixes. Deterministic in (options.seed, shaper).
[[nodiscard]] LoadTrace synthesize(const Shaper& shaper, const SynthesisOptions& options);

}  // namespace mga::serve::load
