// Load traces: the production-scenario sibling of the retrain
// ObservationLog (DESIGN.md §13).
//
// A `LoadTrace` is the arrival schedule of a serving workload, stripped to
// what replay needs: per-request arrival offset, route key, tier, deadline
// and tenant. A `TraceRecorder` captures one on the live submit path (one
// lock-guarded ring push per request — cheap enough to leave on in
// production via ServeOptions::record_trace), `save_trace`/`load_trace`
// round-trip it through a small versioned binary format, and the
// ReplayEngine (replay.hpp) drives a service through it again — which is
// how an incident's traffic shape becomes a reproducible bench input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mga::serve::load {

/// One recorded arrival. Offsets are relative to the trace's start so a
/// trace is position-independent; routes are the service's route_key
/// (machine ⊕ kernel fingerprint) for recorded traffic, or a synthetic
/// catalog encoding for generated traces (see shaper.hpp).
struct TraceRecord {
  std::uint64_t arrival_us = 0;   ///< Offset from the first recorded arrival.
  std::uint64_t route = 0;        ///< Route key / catalog encoding.
  std::uint64_t deadline_us = 0;  ///< Request deadline; 0 = none.
  std::uint32_t tenant = 0;       ///< Tenant index under the trace's policy.
  std::uint8_t tier = 1;          ///< Priority tier (kNumTiers-bounded).
};

struct LoadTrace {
  std::vector<TraceRecord> records;
  /// Arrivals the recorder dropped once its ring wrapped (oldest first out).
  std::uint64_t dropped = 0;
};

/// Bounded MPMC recorder for the facade's submit path. Keeps the most
/// recent `capacity` arrivals (ring semantics: a full recorder overwrites
/// its oldest record), so "save the last minutes of traffic after an
/// incident" works without unbounded memory.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity);

  /// Record one arrival at `now_us` (absolute microseconds on the caller's
  /// clock; the recorder rebases to the first arrival on snapshot).
  void record(std::uint64_t now_us, std::uint64_t route, std::uint64_t deadline_us,
              std::uint32_t tenant, std::uint8_t tier);

  /// The retained window, oldest first, offsets rebased to its first record.
  [[nodiscard]] LoadTrace snapshot() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceRecord> ring_;  // absolute arrival_us until snapshot
  std::size_t head_ = 0;           // next write position once full
  std::uint64_t dropped_ = 0;
};

/// Serialize `trace` to `path` (magic + version + count + packed records,
/// little-endian). Throws std::runtime_error on I/O failure.
void save_trace(const LoadTrace& trace, const std::string& path);

/// Load a trace written by `save_trace`. Throws std::runtime_error on I/O
/// failure, bad magic, unsupported version, or a truncated record section —
/// a corrupt trace must fail loudly, not replay garbage.
[[nodiscard]] LoadTrace load_trace(const std::string& path);

}  // namespace mga::serve::load
