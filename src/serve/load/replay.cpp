#include "serve/load/replay.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "serve/load/shaper.hpp"
#include "util/check.hpp"

namespace mga::serve::load {

namespace {

using Clock = std::chrono::steady_clock;

/// Outcome collector shared with every ticket continuation. Samples are
/// written by index into a pre-sized vector (each continuation owns its
/// slot, so no lock on the outcome path); the per-slot `done` flag
/// publishes the write so a no-wait caller can read resolved slots while
/// stragglers are still in flight, and the mutex/cv pair only backs the
/// final wait.
struct Collector {
  struct Slot {
    ReplaySample sample;
    std::atomic<bool> done{false};
  };
  explicit Collector(std::size_t n) : slots(n) {}
  std::vector<Slot> slots;  // sized once, never reallocated
  std::atomic<std::size_t> resolved{0};
  std::mutex mutex;
  std::condition_variable cv;
};

}  // namespace

ReplayReport replay(TuningService& service, const LoadTrace& trace,
                    const ReplayCatalog& catalog, const ReplayOptions& options) {
  MGA_CHECK_MSG(!catalog.kernels.empty(), "replay: catalog needs at least one kernel");
  MGA_CHECK_MSG(!catalog.input_bytes.empty(), "replay: catalog needs at least one input");
  ReplayReport report;
  const std::size_t n = trace.records.size();
  auto collector = std::make_shared<Collector>(n);
  const Clock::time_point start = Clock::now();
  constexpr std::uint64_t kInputMask = (std::uint64_t{1} << kRouteInputBits) - 1;

  for (std::size_t i = 0; i < n; ++i) {
    const TraceRecord& record = trace.records[i];
    if (options.speed > 0.0) {
      const auto offset = std::chrono::microseconds(
          static_cast<std::uint64_t>(static_cast<double>(record.arrival_us) / options.speed));
      std::this_thread::sleep_until(start + offset);
    }
    TuneRequest request;
    request.kernel =
        catalog.kernels[(record.route >> kRouteInputBits) % catalog.kernels.size()];
    request.input_bytes =
        catalog.input_bytes[(record.route & kInputMask) % catalog.input_bytes.size()];
    request.machine = catalog.machine;
    request.options.priority = static_cast<Priority>(
        std::min<std::uint8_t>(record.tier, static_cast<std::uint8_t>(kNumTiers - 1)));
    request.options.admission = options.admission;
    if (record.deadline_us > 0)
      request.options.deadline = std::chrono::microseconds(record.deadline_us);
    if (record.tenant < options.tenant_names.size())
      request.options.tenant = options.tenant_names[record.tenant];

    Collector::Slot& slot = collector->slots[i];
    slot.sample.arrival_us = record.arrival_us;
    slot.sample.tenant = record.tenant;
    service.submit(std::move(request))
        .on_resolved([collector, i, start](const TuneOutcome& outcome) {
          Collector::Slot& mine = collector->slots[i];
          ReplaySample& s = mine.sample;
          s.done_offset_us =
              std::chrono::duration<double, std::micro>(Clock::now() - start).count();
          if (outcome.ok()) {
            s.ok = true;
            s.latency_us = outcome.value().latency_us;
          } else {
            s.rejected = outcome.error().kind == ServeErrorKind::kRejected;
          }
          mine.done.store(true, std::memory_order_release);
          if (collector->resolved.fetch_add(1, std::memory_order_acq_rel) + 1 ==
              collector->slots.size()) {
            const std::lock_guard<std::mutex> lock(collector->mutex);
            collector->cv.notify_all();
          }
        });
  }

  if (options.wait_for_outcomes && n > 0) {
    std::unique_lock<std::mutex> lock(collector->mutex);
    collector->cv.wait(lock, [&] {
      return collector->resolved.load(std::memory_order_acquire) == n;
    });
  }
  report.duration_s = std::chrono::duration<double>(Clock::now() - start).count();

  std::uint32_t max_tenant = 0;
  for (const TraceRecord& record : trace.records)
    max_tenant = std::max(max_tenant, record.tenant);
  report.tenants.resize(n == 0 ? 0 : max_tenant + 1);
  for (std::size_t t = 0; t < report.tenants.size(); ++t)
    report.tenants[t].name =
        t < options.tenant_names.size() ? options.tenant_names[t] : "default";

  report.submitted = n;
  report.samples.reserve(n);
  for (Collector::Slot& slot : collector->slots) {
    const bool done = slot.done.load(std::memory_order_acquire);
    ReplaySample s;
    if (done) {
      s = slot.sample;
    } else {
      // Still in flight (wait_for_outcomes = false): read the submission
      // fields only — the continuation may be writing the rest right now,
      // and those are the only members the submitting thread wrote.
      s.arrival_us = slot.sample.arrival_us;
      s.tenant = slot.sample.tenant;
    }
    TenantReplayStats& tenant = report.tenants[s.tenant];
    ++tenant.submitted;
    if (s.ok) {
      ++report.completed;
      ++tenant.completed;
    } else if (s.rejected) {
      ++report.rejected;
      ++tenant.rejected;
    } else if (done) {
      ++report.failed;
      ++tenant.failed;
    }
    report.samples.push_back(s);
  }
  return report;
}

}  // namespace mga::serve::load
