#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/check.hpp"

namespace mga::serve {

void ServiceStats::configure_tenants(
    const std::vector<std::pair<std::string, double>>& tenants) {
  MGA_CHECK_MSG(tenants_.empty(), "ServiceStats: tenants already configured");
  tenants_.reserve(tenants.size());
  for (const auto& [name, weight] : tenants) {
    auto slot = std::make_unique<TenantSlot>();
    slot->name = name;
    slot->weight = weight;
    tenants_.push_back(std::move(slot));
  }
}

void ServiceStats::record_tenant_completed(std::uint32_t tenant, double latency_us) {
  if (tenant >= tenants_.size()) return;
  TenantSlot& slot = *tenants_[tenant];
  slot.completed.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(latency_mutex_);
  slot.latency_hist.record(latency_us);
}

void ServiceStats::record_batch(std::size_t size) noexcept {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(size, std::memory_order_relaxed);
  std::uint64_t seen = max_batch_.load(std::memory_order_relaxed);
  while (size > seen && !max_batch_.compare_exchange_weak(seen, size)) {
  }
}

void ServiceStats::record_completion(double latency_us, double queue_wait_us,
                                     double compute_us, double extract_us,
                                     double forward_us, Priority tier) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  Tier& t = tiers_[static_cast<std::size_t>(tier)];
  t.completed.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(latency_mutex_);
  latency_sum_ += latency_us;
  queue_wait_sum_ += queue_wait_us;
  compute_sum_ += compute_us;
  extract_sum_ += extract_us;
  forward_sum_ += forward_us;
  latency_hist_.record(latency_us);
  t.latency_hist.record(latency_us);
}

ServiceStatsSnapshot ServiceStats::snapshot(const FeatureCacheStats& cache) const {
  ServiceStatsSnapshot s;
  s.submitted = submitted_.load();
  s.completed = completed_.load();
  s.failed = failed_.load();
  s.canary_served = canary_served_.load();
  s.canary_incumbent_served = canary_incumbent_served_.load();
  s.forwards_compiled = forwards_compiled_.load();
  s.forwards_interpreted = forwards_interpreted_.load();
  s.plan_layout_hits = plan_layout_hits_.load();
  s.plan_layout_misses = plan_layout_misses_.load();
  s.batches = batches_.load();
  s.max_batch = max_batch_.load();
  s.batched_requests = batched_requests_.load();
  s.mean_batch = s.batches == 0 ? 0.0
                                : static_cast<double>(s.batched_requests) /
                                      static_cast<double>(s.batches);
  s.cache = cache;
  s.pipeline.dispatched = pipeline_dispatched_.load();
  s.pipeline.steals = pipeline_steals_.load();
  s.pipeline.extract_busy_us =
      static_cast<double>(stage_busy_ns_[kPipelineExtract].load()) / 1000.0;
  s.pipeline.forward_busy_us =
      static_cast<double>(stage_busy_ns_[kPipelineForward].load()) / 1000.0;
  s.pipeline.publish_busy_us =
      static_cast<double>(stage_busy_ns_[kPipelinePublish].load()) / 1000.0;

  {
    const std::lock_guard<std::mutex> lock(latency_mutex_);
    s.latency_hist = latency_hist_;
    if (s.completed > 0) {
      const auto n = static_cast<double>(s.completed);
      s.latency_mean_us = latency_sum_ / n;
      s.queue_wait_mean_us = queue_wait_sum_ / n;
      s.compute_mean_us = compute_sum_ / n;
      s.extract_mean_us = extract_sum_ / n;
      s.forward_mean_us = forward_sum_ / n;
    }
    for (std::size_t t = 0; t < kNumTiers; ++t) s.tiers[t].latency_hist = tiers_[t].latency_hist;
    s.tenants.resize(tenants_.size());
    for (std::size_t t = 0; t < tenants_.size(); ++t)
      s.tenants[t].latency_hist = tenants_[t]->latency_hist;
  }
  s.latency_max_us = s.latency_hist.max();
  s.latency_p50_us = s.latency_hist.percentile(0.50);
  s.latency_p95_us = s.latency_hist.percentile(0.95);
  s.latency_p99_us = s.latency_hist.percentile(0.99);
  for (std::size_t t = 0; t < kNumTiers; ++t) {
    TierStatsSnapshot& tier = s.tiers[t];
    tier.admitted = tiers_[t].admitted.load();
    tier.completed = tiers_[t].completed.load();
    tier.rejected = tiers_[t].rejected.load();
    tier.shed = tiers_[t].shed.load();
    tier.expired = tiers_[t].expired.load();
    tier.cancelled = tiers_[t].cancelled.load();
    tier.latency_p50_us = tier.latency_hist.percentile(0.50);
    tier.latency_p95_us = tier.latency_hist.percentile(0.95);
  }
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    TenantStatsSnapshot& tenant = s.tenants[t];
    const TenantSlot& slot = *tenants_[t];
    tenant.name = slot.name;
    tenant.weight = slot.weight;
    tenant.submitted = slot.submitted.load();
    tenant.admitted = slot.admitted.load();
    tenant.completed = slot.completed.load();
    tenant.rejected_quota = slot.rejected_quota.load();
    tenant.rejected_share = slot.rejected_share.load();
    tenant.failed = slot.failed.load();
    tenant.latency_p50_us = tenant.latency_hist.percentile(0.50);
    tenant.latency_p95_us = tenant.latency_hist.percentile(0.95);
  }
  return s;
}

ServiceStatsSnapshot aggregate_snapshots(std::vector<ServiceStatsSnapshot> shards) {
  MGA_CHECK_MSG(!shards.empty(), "aggregate_snapshots: need at least one shard");
  ServiceStatsSnapshot s;
  double latency_sum = 0.0, queue_wait_sum = 0.0, compute_sum = 0.0;
  double extract_sum = 0.0, forward_sum = 0.0;
  for (const ServiceStatsSnapshot& shard : shards) {
    s.submitted += shard.submitted;
    s.completed += shard.completed;
    s.failed += shard.failed;
    s.canary_served += shard.canary_served;
    s.canary_incumbent_served += shard.canary_incumbent_served;
    s.forwards_compiled += shard.forwards_compiled;
    s.forwards_interpreted += shard.forwards_interpreted;
    s.plan_layout_hits += shard.plan_layout_hits;
    s.plan_layout_misses += shard.plan_layout_misses;
    s.batches += shard.batches;
    s.batched_requests += shard.batched_requests;
    s.max_batch = std::max(s.max_batch, shard.max_batch);
    s.pipeline.dispatched += shard.pipeline.dispatched;
    s.pipeline.steals += shard.pipeline.steals;
    s.pipeline.extract_busy_us += shard.pipeline.extract_busy_us;
    s.pipeline.forward_busy_us += shard.pipeline.forward_busy_us;
    s.pipeline.publish_busy_us += shard.pipeline.publish_busy_us;
    // Re-derive the sums the per-shard means were computed from, so the
    // aggregate mean weights each shard by its completion count.
    const auto completed = static_cast<double>(shard.completed);
    latency_sum += shard.latency_mean_us * completed;
    queue_wait_sum += shard.queue_wait_mean_us * completed;
    compute_sum += shard.compute_mean_us * completed;
    extract_sum += shard.extract_mean_us * completed;
    forward_sum += shard.forward_mean_us * completed;
    s.latency_max_us = std::max(s.latency_max_us, shard.latency_max_us);
    s.latency_hist.merge(shard.latency_hist);
    for (std::size_t t = 0; t < kNumTiers; ++t) {
      s.tiers[t].admitted += shard.tiers[t].admitted;
      s.tiers[t].completed += shard.tiers[t].completed;
      s.tiers[t].rejected += shard.tiers[t].rejected;
      s.tiers[t].shed += shard.tiers[t].shed;
      s.tiers[t].expired += shard.tiers[t].expired;
      s.tiers[t].cancelled += shard.tiers[t].cancelled;
      s.tiers[t].latency_hist.merge(shard.tiers[t].latency_hist);
    }
    // Tenant blocks merge by index: every shard runs the same normalized
    // TenantPolicy, so index i is the same tenant everywhere.
    if (s.tenants.size() < shard.tenants.size()) s.tenants.resize(shard.tenants.size());
    for (std::size_t t = 0; t < shard.tenants.size(); ++t) {
      TenantStatsSnapshot& into = s.tenants[t];
      const TenantStatsSnapshot& from = shard.tenants[t];
      into.name = from.name;
      into.weight = from.weight;
      into.submitted += from.submitted;
      into.admitted += from.admitted;
      into.completed += from.completed;
      into.rejected_quota += from.rejected_quota;
      into.rejected_share += from.rejected_share;
      into.failed += from.failed;
      into.latency_hist.merge(from.latency_hist);
    }
    s.cache.hits += shard.cache.hits;
    s.cache.misses += shard.cache.misses;
    s.cache.evictions += shard.cache.evictions;
    s.cache.profile_memo_hits += shard.cache.profile_memo_hits;
    s.cache.profiles_run += shard.cache.profiles_run;
    s.cache.entries += shard.cache.entries;
    s.uptime_seconds = std::max(s.uptime_seconds, shard.uptime_seconds);
    s.health = obs::worse(s.health, shard.health);
    s.slo_window_total += shard.slo_window_total;
    s.slo_window_bad += shard.slo_window_bad;
  }
  if (s.batches > 0)
    s.mean_batch = static_cast<double>(s.batched_requests) / static_cast<double>(s.batches);
  if (s.completed > 0) {
    const auto n = static_cast<double>(s.completed);
    s.latency_mean_us = latency_sum / n;
    s.queue_wait_mean_us = queue_wait_sum / n;
    s.compute_mean_us = compute_sum / n;
    s.extract_mean_us = extract_sum / n;
    s.forward_mean_us = forward_sum / n;
  }

  // Exact aggregate percentiles from the merged histograms: unlike the old
  // pooled raw windows (bounded rings that truncate a busy shard's history),
  // the merge weighs every completion once.
  s.latency_p50_us = s.latency_hist.percentile(0.50);
  s.latency_p95_us = s.latency_hist.percentile(0.95);
  s.latency_p99_us = s.latency_hist.percentile(0.99);
  for (std::size_t t = 0; t < kNumTiers; ++t) {
    s.tiers[t].latency_p50_us = s.tiers[t].latency_hist.percentile(0.50);
    s.tiers[t].latency_p95_us = s.tiers[t].latency_hist.percentile(0.95);
  }
  for (TenantStatsSnapshot& tenant : s.tenants) {
    tenant.latency_p50_us = tenant.latency_hist.percentile(0.50);
    tenant.latency_p95_us = tenant.latency_hist.percentile(0.95);
  }

  s.shards = std::move(shards);
  return s;
}

util::Table stats_table(const ServiceStatsSnapshot& s) {
  util::Table table({"metric", "value"});
  // Telemetry-plane header only when the facade stamped one (uptime > 0) —
  // a hand-built or per-shard snapshot renders exactly the rows it always
  // did. Compliance is the SLO long window: good / total across tiers.
  if (s.uptime_seconds > 0.0) {
    table.add_row({"uptime", util::fmt_double(s.uptime_seconds) + " s"});
    table.add_row({"health", obs::to_string(s.health)});
    const double compliance =
        s.slo_window_total == 0
            ? 1.0
            : 1.0 - static_cast<double>(std::min(s.slo_window_bad, s.slo_window_total)) /
                        static_cast<double>(s.slo_window_total);
    table.add_row({"slo compliance (long window)",
                   util::fmt_percent(compliance) + " (" + std::to_string(s.slo_window_bad) +
                       " / " + std::to_string(s.slo_window_total) + " bad)"});
  }
  table.add_row({"requests submitted", std::to_string(s.submitted)});
  table.add_row({"requests completed", std::to_string(s.completed)});
  table.add_row({"requests failed", std::to_string(s.failed)});
  // Canary split-path row only when a rollout ever touched this service —
  // a snapshot without one renders exactly the rows it always did.
  if (s.canary_served + s.canary_incumbent_served > 0)
    table.add_row({"canary served (candidate / incumbent arm)",
                   std::to_string(s.canary_served) + " / " +
                       std::to_string(s.canary_incumbent_served)});
  table.add_row({"batches", std::to_string(s.batches)});
  // Forward path split only once a forward actually ran — it surfaces the
  // compiled runtime's silent interpreter fallback, and a service that never
  // forwarded renders exactly the rows it always did.
  if (s.forwards_compiled + s.forwards_interpreted > 0) {
    table.add_row({"forwards (compiled / interpreted)",
                   std::to_string(s.forwards_compiled) + " / " +
                       std::to_string(s.forwards_interpreted)});
    table.add_row({"plan layout cache (hits / misses)",
                   std::to_string(s.plan_layout_hits) + " / " +
                       std::to_string(s.plan_layout_misses)});
  }
  table.add_row({"mean batch size", util::fmt_double(s.mean_batch)});
  table.add_row({"max batch size", std::to_string(s.max_batch)});
  // Pipelined-engine occupancy only when the staged engine ran — a legacy
  // (pipeline=false) service renders exactly the rows it always did.
  if (s.pipeline.dispatched > 0) {
    table.add_row({"pipeline batches (dispatched / stolen)",
                   std::to_string(s.pipeline.dispatched) + " / " +
                       std::to_string(s.pipeline.steals)});
    table.add_row({"pipeline stage busy (ext/fwd/pub)",
                   util::fmt_double(s.pipeline.extract_busy_us) + " / " +
                       util::fmt_double(s.pipeline.forward_busy_us) + " / " +
                       util::fmt_double(s.pipeline.publish_busy_us) + " us"});
  }
  table.add_row({"feature cache hit-rate", util::fmt_percent(s.cache.hit_rate())});
  table.add_row({"feature cache entries", std::to_string(s.cache.entries)});
  table.add_row({"feature cache evictions", std::to_string(s.cache.evictions)});
  table.add_row({"profiling runs", std::to_string(s.cache.profiles_run)});
  table.add_row({"profile memo hits", std::to_string(s.cache.profile_memo_hits)});
  table.add_row({"latency mean", util::fmt_double(s.latency_mean_us) + " us"});
  table.add_row({"latency p50", util::fmt_double(s.latency_p50_us) + " us"});
  table.add_row({"latency p95", util::fmt_double(s.latency_p95_us) + " us"});
  table.add_row({"latency p99", util::fmt_double(s.latency_p99_us) + " us"});
  table.add_row({"latency max", util::fmt_double(s.latency_max_us) + " us"});
  table.add_row({"queue wait mean", util::fmt_double(s.queue_wait_mean_us) + " us"});
  table.add_row({"compute mean", util::fmt_double(s.compute_mean_us) + " us"});
  table.add_row({"extract mean", util::fmt_double(s.extract_mean_us) + " us"});
  table.add_row({"forward mean", util::fmt_double(s.forward_mean_us) + " us"});
  for (std::size_t t = 0; t < kNumTiers; ++t) {
    const TierStatsSnapshot& tier = s.tiers[t];
    const std::string name = to_string(static_cast<Priority>(t));
    table.add_row({name + " admitted/completed",
                   std::to_string(tier.admitted) + " / " + std::to_string(tier.completed)});
    table.add_row({name + " rej/shed/exp/can",
                   std::to_string(tier.rejected) + " / " + std::to_string(tier.shed) + " / " +
                       std::to_string(tier.expired) + " / " + std::to_string(tier.cancelled)});
    table.add_row({name + " p50/p95", util::fmt_double(tier.latency_p50_us) + " / " +
                                          util::fmt_double(tier.latency_p95_us) + " us"});
  }
  // Per-tenant QoS breakdown only when the service runs a TenantPolicy — an
  // untenanted snapshot renders exactly the rows it always did.
  for (const TenantStatsSnapshot& tenant : s.tenants) {
    const std::string name = "tenant '" + tenant.name + "'";
    table.add_row({name + " weight / sub/adm/comp",
                   util::fmt_double(tenant.weight) + " / " + std::to_string(tenant.submitted) +
                       " / " + std::to_string(tenant.admitted) + " / " +
                       std::to_string(tenant.completed)});
    table.add_row({name + " rej quota/share, failed",
                   std::to_string(tenant.rejected_quota) + " / " +
                       std::to_string(tenant.rejected_share) + ", " +
                       std::to_string(tenant.failed)});
    table.add_row({name + " p50/p95", util::fmt_double(tenant.latency_p50_us) + " / " +
                                          util::fmt_double(tenant.latency_p95_us) + " us"});
  }
  // Per-shard breakdown of a sharded service: routing balance and per-shard
  // cache locality at a glance. A single-shard snapshot renders exactly the
  // rows it always did.
  if (s.shards.size() > 1) {
    for (std::size_t i = 0; i < s.shards.size(); ++i) {
      const ServiceStatsSnapshot& shard = s.shards[i];
      const std::string name = "shard " + std::to_string(i);
      table.add_row({name + " sub/comp/fail", std::to_string(shard.submitted) + " / " +
                                                  std::to_string(shard.completed) + " / " +
                                                  std::to_string(shard.failed)});
      table.add_row({name + " cache hit-rate/entries",
                     util::fmt_percent(shard.cache.hit_rate()) + " / " +
                         std::to_string(shard.cache.entries)});
      table.add_row({name + " mean batch / p95",
                     util::fmt_double(shard.mean_batch) + " / " +
                         util::fmt_double(shard.latency_p95_us) + " us"});
      if (shard.uptime_seconds > 0.0)
        table.add_row({name + " health", obs::to_string(shard.health)});
    }
  }
  return table;
}

}  // namespace mga::serve
