#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mga::serve {

namespace {

/// Nearest-rank percentile over a sorted sample.
[[nodiscard]] double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

void ServiceStats::record_batch(std::size_t size) noexcept {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(size, std::memory_order_relaxed);
  std::uint64_t seen = max_batch_.load(std::memory_order_relaxed);
  while (size > seen && !max_batch_.compare_exchange_weak(seen, size)) {
  }
}

void ServiceStats::record_completion(double latency_us) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(latency_mutex_);
  latency_sum_ += latency_us;
  latency_max_ = std::max(latency_max_, latency_us);
  if (latency_window_.size() < kLatencyWindow) {
    latency_window_.push_back(latency_us);
  } else {
    latency_window_[latency_next_] = latency_us;
  }
  latency_next_ = (latency_next_ + 1) % kLatencyWindow;
}

ServiceStatsSnapshot ServiceStats::snapshot(const FeatureCacheStats& cache) const {
  ServiceStatsSnapshot s;
  s.submitted = submitted_.load();
  s.completed = completed_.load();
  s.failed = failed_.load();
  s.batches = batches_.load();
  s.max_batch = max_batch_.load();
  const std::uint64_t batched = batched_requests_.load();
  s.mean_batch =
      s.batches == 0 ? 0.0 : static_cast<double>(batched) / static_cast<double>(s.batches);
  s.cache = cache;

  std::vector<double> window;
  {
    const std::lock_guard<std::mutex> lock(latency_mutex_);
    window = latency_window_;
    s.latency_max_us = latency_max_;
    if (s.completed > 0) s.latency_mean_us = latency_sum_ / static_cast<double>(s.completed);
  }
  if (!window.empty()) {
    std::sort(window.begin(), window.end());
    s.latency_p50_us = percentile(window, 0.50);
    s.latency_p95_us = percentile(window, 0.95);
  }
  return s;
}

util::Table stats_table(const ServiceStatsSnapshot& s) {
  util::Table table({"metric", "value"});
  table.add_row({"requests submitted", std::to_string(s.submitted)});
  table.add_row({"requests completed", std::to_string(s.completed)});
  table.add_row({"requests failed", std::to_string(s.failed)});
  table.add_row({"batches", std::to_string(s.batches)});
  table.add_row({"mean batch size", util::fmt_double(s.mean_batch)});
  table.add_row({"max batch size", std::to_string(s.max_batch)});
  table.add_row({"feature cache hit-rate", util::fmt_percent(s.cache.hit_rate())});
  table.add_row({"feature cache entries", std::to_string(s.cache.entries)});
  table.add_row({"feature cache evictions", std::to_string(s.cache.evictions)});
  table.add_row({"profiling runs", std::to_string(s.cache.profiles_run)});
  table.add_row({"profile memo hits", std::to_string(s.cache.profile_memo_hits)});
  table.add_row({"latency mean", util::fmt_double(s.latency_mean_us) + " us"});
  table.add_row({"latency p50", util::fmt_double(s.latency_p50_us) + " us"});
  table.add_row({"latency p95", util::fmt_double(s.latency_p95_us) + " us"});
  table.add_row({"latency max", util::fmt_double(s.latency_max_us) + " us"});
  return table;
}

}  // namespace mga::serve
