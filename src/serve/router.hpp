// ShardRouter — the routing layer of the serve stack (see DESIGN.md §6/§7).
//
// Maps a `(machine, kernel fingerprint)` routing key onto one of N
// `ServeShard`s with a consistent-hash ring: every shard contributes
// `virtual_nodes` pseudo-random points on a 64-bit circle and a key is owned
// by the first point clockwise from it. Two properties fall out:
//
//  * **Affinity.** The mapping is a pure function of the key, so repeat
//    traffic for a kernel always lands on the shard whose FeatureCache
//    already holds its features (and whose linger EWMA knows its arrival
//    rate). No cross-shard cache fills, no duplicated feature extraction —
//    except the once-per-shard extremes a plain `key % N` would also pay.
//  * **Stability.** Growing N→M shards only *adds* ring points, so a key
//    either keeps its shard or moves to one of the new shards; in
//    expectation only (M−N)/M of keys move (vs. (M−1)/M under modulo
//    hashing). Virtual nodes keep per-shard load balanced around 1/N.
//
// The ring is immutable after construction — routing is a lock-free binary
// search — which is all the facade needs: shard count is fixed per
// TuningService instance, and stability across *instances* (restarts,
// reconfigurations) is what the ring buys.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "corpus/spec.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mga::serve {

/// Structural fingerprint of a kernel for routing: a stable hash of the full
/// spec (name, suite, family, every FamilyParams knob). Equal specs — the
/// batching identity — always collide; unlike `kernel_ir_hash` it needs no
/// IR generation, so the submit path can afford it per request.
[[nodiscard]] inline std::uint64_t route_fingerprint(const corpus::KernelSpec& kernel) {
  std::uint64_t h = util::fnv1a(kernel.name);
  h = util::hash_combine(h, util::fnv1a(kernel.suite));
  h = util::hash_combine(h, static_cast<std::uint64_t>(kernel.family));
  const corpus::FamilyParams& p = kernel.params;
  h = util::hash_combine(h, static_cast<std::uint64_t>(p.nest_depth));
  h = util::hash_combine(h, static_cast<std::uint64_t>(p.arith_chain));
  h = util::hash_combine(h, static_cast<std::uint64_t>(p.arrays));
  h = util::hash_combine(h, static_cast<std::uint64_t>(p.has_branch));
  h = util::hash_combine(h, static_cast<std::uint64_t>(p.has_reduction));
  h = util::hash_combine(h, static_cast<std::uint64_t>(p.helper_calls));
  h = util::hash_combine(h, static_cast<std::uint64_t>(p.extern_calls));
  h = util::hash_combine(h, std::bit_cast<std::uint64_t>(p.reuse));
  h = util::hash_combine(h, std::bit_cast<std::uint64_t>(p.imbalance));
  return h;
}

/// Routing key for a request: machine and kernel together, so one kernel's
/// traffic for different registry entries may spread while repeat traffic
/// for the same (machine, kernel) is pinned to one shard.
[[nodiscard]] inline std::uint64_t route_key(std::string_view machine,
                                             std::uint64_t kernel_fingerprint) {
  return util::hash_combine(util::fnv1a(machine), kernel_fingerprint);
}

class ShardRouter {
 public:
  static constexpr std::size_t kDefaultVirtualNodes = 128;

  explicit ShardRouter(std::size_t shards,
                       std::size_t virtual_nodes = kDefaultVirtualNodes)
      : shards_(shards) {
    MGA_CHECK_MSG(shards > 0, "ShardRouter: need at least one shard");
    MGA_CHECK_MSG(virtual_nodes > 0, "ShardRouter: need at least one virtual node");
    ring_.reserve(shards * virtual_nodes);
    for (std::size_t s = 0; s < shards; ++s) {
      for (std::size_t v = 0; v < virtual_nodes; ++v) {
        // Ring points depend only on (shard, vnode), never on the shard
        // *count* — the growth-stability property relies on shard s placing
        // the same points in an N-shard ring and an M-shard ring.
        std::uint64_t state = (static_cast<std::uint64_t>(s) << 32) | v;
        ring_.emplace_back(util::splitmix64(state), static_cast<std::uint32_t>(s));
      }
    }
    std::sort(ring_.begin(), ring_.end());
  }

  /// Owning shard of `key`: the first ring point at or clockwise of it.
  [[nodiscard]] std::size_t shard_for(std::uint64_t key) const {
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), key,
        [](const std::pair<std::uint64_t, std::uint32_t>& point, std::uint64_t k) {
          return point.first < k;
        });
    if (it == ring_.end()) it = ring_.begin();  // wrap around the circle
    return it->second;
  }

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

 private:
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;  // sorted points
  std::size_t shards_;
};

}  // namespace mga::serve
