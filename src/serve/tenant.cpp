#include "serve/tenant.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

#include "util/check.hpp"

namespace mga::serve {

TenantGovernor::TenantGovernor(TenantPolicy policy) : policy_(std::move(policy)) {
  MGA_CHECK_MSG(!policy_.tenants.empty(), "TenantGovernor: need at least one tenant");
  states_.resize(policy_.tenants.size());
  for (std::size_t t = 0; t < policy_.tenants.size(); ++t) {
    MGA_CHECK_MSG(policy_.tenants[t].weight > 0.0,
                  "TenantGovernor: tenant weights must be positive");
    // Full burst grant up front: the pipe fills before releases start
    // minting, and a single-tenant cold start is never share-clipped.
    states_[t].credit = cap(t);
  }
}

TenantGovernor::Verdict TenantGovernor::try_admit(std::uint32_t tenant) {
  const std::uint32_t t = clamp(tenant);
  const std::lock_guard<obs::ProbedMutex> lock(mutex_);
  State& state = states_[t];
  const TenantSpec& spec = policy_.tenants[t];
  // Quota before fairness: banked credit must not buy past the hard cap.
  if (spec.quota > 0 && state.outstanding >= spec.quota)
    return Verdict::kQuotaExceeded;
  // Contention latches with hysteresis (cleared in `release` once the
  // backlog halves). Without the latch, every release at saturation dips
  // `total_` just below the threshold and the next arrival is admitted
  // without spending credit — at the boundary *all* admissions ride that
  // free slot and the weighted clip never engages at all.
  if (!contended_ && total_ >= policy_.fair_threshold) contended_ = true;
  if (states_.size() > 1 && contended_) {
    if (state.credit < 1.0) {
      state.hungry = true;  // keep earning minted credit while clipped
      return Verdict::kOverShare;
    }
    state.credit -= 1.0;
  }
  state.hungry = false;
  ++state.outstanding;
  ++total_;
  return Verdict::kAdmit;
}

void TenantGovernor::release(std::uint32_t tenant) noexcept {
  const std::uint32_t t = clamp(tenant);
  const std::lock_guard<obs::ProbedMutex> lock(mutex_);
  State& state = states_[t];
  // Defensive: an unbalanced release (there should be none — the cleanup
  // hook fires exactly once per admitted ticket) must not underflow.
  if (state.outstanding == 0) return;
  --state.outstanding;
  --total_;
  if (contended_ && total_ <= policy_.fair_threshold / 2) contended_ = false;
  if (states_.size() < 2) return;
  // Mint one admission credit at the release: under saturation this ties
  // the total admission rate to the service rate, and splitting it by
  // weight across the tenants still contending (in flight, or clipped and
  // waiting) is what makes per-tenant goodput converge to the weight
  // share. A release with no one left contending mints nothing — the
  // burst grant covers the next cold start.
  const auto active = [&](std::size_t i) {
    return states_[i].outstanding > 0 || states_[i].hungry;
  };
  double active_weight = 0.0;
  for (std::size_t i = 0; i < states_.size(); ++i)
    if (active(i)) active_weight += policy_.tenants[i].weight;
  if (active_weight <= 0.0) return;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (!active(i)) continue;
    states_[i].credit =
        std::min(states_[i].credit + policy_.tenants[i].weight / active_weight, cap(i));
  }
}

double TenantGovernor::cap(std::size_t tenant) const noexcept {
  // The bank cap must scale with weight, not be uniform: releases arrive in
  // gulps (batched publishes, scheduler quanta on small machines), and a
  // uniform cap clips every tenant's gulp accrual to the same ceiling —
  // equalizing admission shares exactly when fairness is under the most
  // pressure. With cap ∝ weight the fill time constant (cap / mint rate =
  // burst_credit x Σweights / release rate) is identical for every tenant,
  // so the caps bind together or not at all and banked ratios stay weighted.
  return policy_.burst_credit * policy_.tenants[tenant].weight;
}

const TenantSpec& TenantGovernor::spec(std::uint32_t tenant) const noexcept {
  return policy_.tenants[clamp(tenant)];
}

std::size_t TenantGovernor::outstanding(std::uint32_t tenant) const {
  const std::lock_guard<obs::ProbedMutex> lock(mutex_);
  return states_[clamp(tenant)].outstanding;
}

std::size_t TenantGovernor::total_outstanding() const {
  const std::lock_guard<obs::ProbedMutex> lock(mutex_);
  return total_;
}

}  // namespace mga::serve
