#include "serve/model_registry.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/compiled.hpp"

namespace mga::serve {

namespace {

/// Process-wide registration counter: tags stay unique even across
/// registries, so a cache shared by two of them cannot alias entries.
std::uint64_t next_tag() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::shared_ptr<const runtime::CompiledForward> ModelRegistry::compile_plan(
    const core::MgaTuner& tuner) noexcept {
  const auto start = std::chrono::steady_clock::now();
  std::shared_ptr<const runtime::CompiledForward> plan;
  try {
    plan = tuner.compile_forward();
  } catch (...) {
    plan = nullptr;  // serve falls back to the interpreter for this generation
  }
  auto& metrics = obs::MetricsRegistry::global();
  if (plan != nullptr) {
    metrics.counter("runtime.plan_compiles", "runtime plans compiled").add();
    metrics
        .gauge("runtime.last_plan_compile_ms", "latest plan compile wall time (ms)")
        .set(plan->info().compile_ms);
  } else {
    metrics.counter("runtime.plan_compile_failures", "runtime plan compiles that fell back")
        .add();
  }
  if (obs::enabled()) {
    auto& collector = obs::TraceCollector::instance();
    collector.record_span(collector.next_request_id(), obs::Stage::kPlanCompile,
                          obs::kNoShard, start, std::chrono::steady_clock::now());
  }
  return plan;
}

void ModelRegistry::add(const std::string& name, core::MgaTuner tuner) {
  Slot slot;
  slot.tuner = std::make_shared<const core::MgaTuner>(std::move(tuner));
  slot.plan = compile_plan(*slot.tuner);
  slot.tag = next_tag();
  const std::lock_guard<obs::ProbedSharedMutex> lock(mutex_);
  if (!slots_.emplace(name, std::move(slot)).second)
    throw std::invalid_argument("ModelRegistry: '" + name +
                                "' is already registered — use swap() to replace it");
}

void ModelRegistry::add_artifact(const std::string& name, const std::string& path,
                                 core::MgaTunerOptions options) {
  const std::lock_guard<obs::ProbedSharedMutex> lock(mutex_);
  Slot slot;
  slot.artifact_path = path;
  slot.options = std::move(options);
  slot.tag = next_tag();
  if (!slots_.emplace(name, std::move(slot)).second)
    throw std::invalid_argument("ModelRegistry: '" + name +
                                "' is already registered — use swap() to replace it");
}

std::map<std::string, ModelRegistry::Slot>::iterator ModelRegistry::find_for_mutation(
    const std::string& name, const char* what) {
  const auto it = slots_.find(name);
  if (it == slots_.end())
    throw LoadError(std::string("ModelRegistry: cannot ") + what + " unknown tuner '" +
                    name + "' — a slot is created only by add()/add_artifact()");
  return it;
}

std::uint64_t ModelRegistry::swap(const std::string& name, core::MgaTuner tuner) {
  // Compile before taking the lock: plan compilation is pure per-tuner work
  // and must not serialize the per-batch shared resolves.
  auto incoming = std::make_shared<const core::MgaTuner>(std::move(tuner));
  auto incoming_plan = compile_plan(*incoming);
  const std::lock_guard<obs::ProbedSharedMutex> lock(mutex_);
  Slot& slot = find_for_mutation(name, "swap")->second;
  slot.tuner = std::move(incoming);
  slot.plan = std::move(incoming_plan);
  slot.artifact_path.clear();  // the slot now holds a live tuner
  slot.options.reset();
  slot.tag = next_tag();
  // An out-of-band swap supersedes a rollout in progress; the candidate's
  // number stays burned (numbers identify one model forever).
  slot.canary.reset();
  slot.canary_plan.reset();
  slot.canary_tag = 0;
  slot.canary_generation = 0;
  slot.generation = ++slot.last_generation;
  return slot.generation;
}

std::uint64_t ModelRegistry::stage(const std::string& name, core::MgaTuner tuner) {
  auto candidate = std::make_shared<const core::MgaTuner>(std::move(tuner));
  auto candidate_plan = compile_plan(*candidate);
  const std::lock_guard<obs::ProbedSharedMutex> lock(mutex_);
  Slot& slot = find_for_mutation(name, "stage a canary for")->second;
  if (slot.canary_generation != 0)
    throw std::invalid_argument("ModelRegistry: '" + name +
                                "' already has a staged canary (generation " +
                                std::to_string(slot.canary_generation) +
                                ") — promote or discard it first");
  slot.canary = std::move(candidate);
  slot.canary_plan = std::move(candidate_plan);
  slot.canary_tag = next_tag();
  slot.canary_generation = ++slot.last_generation;
  return slot.canary_generation;
}

std::optional<ModelRegistry::Resolved> ModelRegistry::try_resolve_canary(
    const std::string& name) const {
  const std::shared_lock<obs::ProbedSharedMutex> lock(mutex_);
  const auto it = slots_.find(name);
  if (it == slots_.end())
    throw std::out_of_range("ModelRegistry: unknown tuner '" + name + "'");
  const Slot& slot = it->second;
  if (slot.canary_generation == 0) return std::nullopt;
  return Resolved{slot.canary, slot.canary_plan, slot.canary_tag, slot.canary_generation,
                  /*canary=*/true};
}

std::uint64_t ModelRegistry::canary_generation(const std::string& name) const {
  const std::shared_lock<obs::ProbedSharedMutex> lock(mutex_);
  const auto it = slots_.find(name);
  if (it == slots_.end())
    throw std::out_of_range("ModelRegistry: unknown tuner '" + name + "'");
  return it->second.canary_generation;
}

std::uint64_t ModelRegistry::promote(const std::string& name) {
  const std::lock_guard<obs::ProbedSharedMutex> lock(mutex_);
  Slot& slot = find_for_mutation(name, "promote")->second;
  if (slot.canary_generation == 0)
    throw LoadError("ModelRegistry: cannot promote '" + name + "' — no staged canary");
  slot.tuner = std::move(slot.canary);
  slot.plan = std::move(slot.canary_plan);  // compiled when the candidate was staged
  slot.artifact_path.clear();
  slot.options.reset();
  // Keep the candidate's tag: feature-cache entries warmed while it served
  // canary traffic were computed against exactly this tuner.
  slot.tag = slot.canary_tag;
  slot.generation = slot.canary_generation;
  slot.canary.reset();
  slot.canary_tag = 0;
  slot.canary_generation = 0;
  return slot.generation;
}

bool ModelRegistry::discard(const std::string& name) {
  const std::lock_guard<obs::ProbedSharedMutex> lock(mutex_);
  Slot& slot = find_for_mutation(name, "discard a canary for")->second;
  const bool had_canary = slot.canary_generation != 0;
  slot.canary.reset();
  slot.canary_plan.reset();
  slot.canary_tag = 0;
  slot.canary_generation = 0;  // the number stays burned via last_generation
  return had_canary;
}

void ModelRegistry::inject_resolve_fault(const std::string& name, std::size_t count) {
  const std::lock_guard<obs::ProbedSharedMutex> lock(mutex_);
  const std::size_t prior = resolve_faults_[name];
  resolve_faults_[name] = count;
  fault_total_.fetch_add(count, std::memory_order_relaxed);
  fault_total_.fetch_sub(prior, std::memory_order_relaxed);
  if (count == 0) resolve_faults_.erase(name);
}

bool ModelRegistry::consume_fault(const std::string& name) const {
  const std::lock_guard<obs::ProbedSharedMutex> lock(mutex_);
  const auto it = resolve_faults_.find(name);
  if (it == resolve_faults_.end() || it->second == 0) return false;
  if (--it->second == 0) resolve_faults_.erase(it);
  fault_total_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

ModelRegistry::Resolved ModelRegistry::resolve(const std::string& name) const {
  // Chaos seam: an armed fault fails this resolve before the slot is
  // touched, exactly like a corrupted artifact. One relaxed load when idle.
  if (fault_total_.load(std::memory_order_relaxed) > 0 && consume_fault(name))
    throw LoadError("ModelRegistry: injected resolve fault for '" + name + "'");
  {
    // Fast path: the tuner is already loaded, which is every resolve but the
    // first per artifact — readers proceed in parallel.
    const std::shared_lock<obs::ProbedSharedMutex> lock(mutex_);
    const auto it = slots_.find(name);
    if (it == slots_.end())
      throw std::out_of_range("ModelRegistry: unknown tuner '" + name + "'");
    const Slot& slot = it->second;
    if (slot.tuner != nullptr)
      return {slot.tuner, slot.plan, slot.tag, slot.generation, /*canary=*/false};
  }
  // Slow path: upgrade to exclusive for the load-on-demand. The slot may
  // have been loaded (or swapped) between the two locks, so re-check first;
  // concurrent getters for any name wait here rather than loading the same
  // artifact twice.
  const std::lock_guard<obs::ProbedSharedMutex> lock(mutex_);
  const auto it = slots_.find(name);
  if (it == slots_.end())
    throw std::out_of_range("ModelRegistry: unknown tuner '" + name + "'");
  Slot& slot = it->second;
  if (slot.tuner == nullptr) {
    try {
      slot.tuner = std::make_shared<const core::MgaTuner>(
          core::MgaTuner::load(slot.artifact_path, *slot.options));
    } catch (const std::exception& e) {
      throw LoadError("ModelRegistry: loading '" + name + "' from '" + slot.artifact_path +
                      "' failed: " + e.what());
    }
    // Lazy loads compile here, once, alongside the (already slow) load.
    slot.plan = compile_plan(*slot.tuner);
  }
  return {slot.tuner, slot.plan, slot.tag, slot.generation, /*canary=*/false};
}

std::uint64_t ModelRegistry::generation(const std::string& name) const {
  const std::shared_lock<obs::ProbedSharedMutex> lock(mutex_);
  const auto it = slots_.find(name);
  if (it == slots_.end())
    throw std::out_of_range("ModelRegistry: unknown tuner '" + name + "'");
  return it->second.generation;
}

std::shared_ptr<const core::MgaTuner> ModelRegistry::get(const std::string& name) const {
  return resolve(name).tuner;
}

bool ModelRegistry::contains(const std::string& name) const {
  const std::shared_lock<obs::ProbedSharedMutex> lock(mutex_);
  return slots_.find(name) != slots_.end();
}

std::vector<std::string> ModelRegistry::names() const {
  const std::shared_lock<obs::ProbedSharedMutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) names.push_back(name);
  return names;
}

}  // namespace mga::serve
