#include "serve/model_registry.hpp"

#include <atomic>
#include <stdexcept>
#include <utility>

namespace mga::serve {

namespace {

/// Process-wide registration counter: tags stay unique even across
/// registries, so a cache shared by two of them cannot alias entries.
std::uint64_t next_tag() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

void ModelRegistry::add(const std::string& name, core::MgaTuner tuner) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Slot slot;
  slot.tuner = std::make_shared<const core::MgaTuner>(std::move(tuner));
  slot.tag = next_tag();
  if (!slots_.emplace(name, std::move(slot)).second)
    throw std::invalid_argument("ModelRegistry: '" + name +
                                "' is already registered — use swap() to replace it");
}

void ModelRegistry::add_artifact(const std::string& name, const std::string& path,
                                 core::MgaTunerOptions options) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Slot slot;
  slot.artifact_path = path;
  slot.options = std::move(options);
  slot.tag = next_tag();
  if (!slots_.emplace(name, std::move(slot)).second)
    throw std::invalid_argument("ModelRegistry: '" + name +
                                "' is already registered — use swap() to replace it");
}

std::uint64_t ModelRegistry::swap(const std::string& name, core::MgaTuner tuner) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(name);
  if (it == slots_.end())
    throw std::out_of_range("ModelRegistry: cannot swap unknown tuner '" + name + "'");
  Slot& slot = it->second;
  slot.tuner = std::make_shared<const core::MgaTuner>(std::move(tuner));
  slot.artifact_path.clear();  // the slot now holds a live tuner
  slot.options.reset();
  slot.tag = next_tag();
  return ++slot.generation;
}

ModelRegistry::Resolved ModelRegistry::resolve(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(name);
  if (it == slots_.end())
    throw std::out_of_range("ModelRegistry: unknown tuner '" + name + "'");
  Slot& slot = it->second;
  if (slot.tuner == nullptr) {
    // Load-on-demand under the registry lock: concurrent getters for any
    // name wait rather than loading the same artifact twice.
    try {
      slot.tuner = std::make_shared<const core::MgaTuner>(
          core::MgaTuner::load(slot.artifact_path, *slot.options));
    } catch (const std::exception& e) {
      throw LoadError("ModelRegistry: loading '" + name + "' from '" + slot.artifact_path +
                      "' failed: " + e.what());
    }
  }
  return {slot.tuner, slot.tag, slot.generation};
}

std::uint64_t ModelRegistry::generation(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(name);
  if (it == slots_.end())
    throw std::out_of_range("ModelRegistry: unknown tuner '" + name + "'");
  return it->second.generation;
}

std::shared_ptr<const core::MgaTuner> ModelRegistry::get(const std::string& name) const {
  return resolve(name).tuner;
}

bool ModelRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slots_.find(name) != slots_.end();
}

std::vector<std::string> ModelRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) names.push_back(name);
  return names;
}

}  // namespace mga::serve
