#include "serve/shard.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/compiled.hpp"
#include "serve/router.hpp"  // only for the route_fingerprint spec hash
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mga::serve {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double micros_between(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

/// Fire a lingering batch this long before its earliest deadline so the
/// clamping request is still live at the pre-forward sweep. Sized for the
/// wake-to-sweep gap on slow, loaded or sanitized builds; the only cost of
/// generosity is a slightly shorter window for deadline-bearing batches.
constexpr auto kDeadlineGuard = std::chrono::milliseconds(5);

/// Smoothing factor of the per-kernel inter-arrival EWMA: new gaps move the
/// estimate quickly enough to track a rate change within a few arrivals.
constexpr double kArrivalEwmaAlpha = 0.3;

/// Bound on the arrival-tracking map. Recycling on overflow only resets the
/// adaptive clamp to its cold (no-linger) state for evicted kernels — never
/// correctness — so a crude clear beats LRU bookkeeping on the submit path.
constexpr std::size_t kMaxArrivalEntries = 4096;

[[nodiscard]] std::vector<std::size_t> lane_capacities(const ServeOptions& options) {
  std::vector<std::size_t> capacities(kNumTiers, options.queue_capacity);
  for (std::size_t t = 0; t < kNumTiers; ++t)
    if (options.tier_capacity[t] > 0) capacities[t] = options.tier_capacity[t];
  return capacities;
}

/// Classify the in-flight exception into a typed ServeError. Must be called
/// from inside a catch block (it rethrows to dispatch on the dynamic type).
[[nodiscard]] ServeError classify_batch_exception() {
  ServeError error;
  error.cause = std::current_exception();
  try {
    throw;
  } catch (const LoadError& e) {
    error.kind = ServeErrorKind::kLoadFailed;
    error.detail = e.what();
  } catch (const std::out_of_range& e) {
    error.kind = ServeErrorKind::kUnknownMachine;
    error.detail = e.what();
  } catch (const std::exception& e) {
    error.kind = ServeErrorKind::kLoadFailed;
    error.detail = e.what();
  } catch (...) {
    error.kind = ServeErrorKind::kLoadFailed;
    error.detail = "unknown error";
  }
  return error;
}

}  // namespace

ServeShard::ServeShard(std::shared_ptr<ModelRegistry> registry, const ServeOptions& options,
                       retrain::ObservationFn observer, obs::StallWatchdog* watchdog)
    : registry_(std::move(registry)),
      options_(options),
      observer_(std::move(observer)),
      cache_(options.cache),
      queue_(lane_capacities(options), options.starvation_limit) {
  MGA_CHECK_MSG(registry_ != nullptr, "ServeShard: null registry");
  MGA_CHECK_MSG(options_.workers > 0, "ServeShard: need at least one worker");
  MGA_CHECK_MSG(options_.max_batch > 0, "ServeShard: max_batch must be positive");
  if (!options_.tenant.tenants.empty()) {
    // Multi-tenant gate, built before any thread starts (same ordering
    // contract as the telemetry plane below). The per-tenant stats slots are
    // sized here too, so the recorders stay branch-only on the hot path.
    governor_ = std::make_unique<TenantGovernor>(options_.tenant);
    std::vector<std::pair<std::string, double>> tenants;
    tenants.reserve(options_.tenant.tenants.size());
    for (const TenantSpec& spec : options_.tenant.tenants)
      tenants.emplace_back(spec.name, spec.weight);
    stats_.configure_tenants(tenants);
  }
  if (options_.telemetry.enabled) {
    // Telemetry plane, built before any thread starts: workers read slo_ /
    // exemplars_ without synchronization beyond construction ordering.
    const TelemetryOptions& telemetry = options_.telemetry;
    slo_ = std::make_unique<obs::SloTracker>(
        telemetry.slo,
        std::vector<obs::SloObjective>(telemetry.objectives.begin(), telemetry.objectives.end()),
        kNumTiers);
    obs::ExemplarOptions exemplar_options;
    exemplar_options.slow_capacity = telemetry.exemplar_slow;
    exemplar_options.error_capacity = telemetry.exemplar_errors;
    exemplar_options.window = telemetry.exemplar_window;
    exemplars_ = std::make_unique<obs::ExemplarReservoir>(exemplar_options);
    if (watchdog != nullptr) register_probes(*watchdog);
  }
  if (options_.pipeline) {
    MGA_CHECK_MSG(options_.stage_queue_capacity > 0,
                  "ServeShard: stage_queue_capacity must be positive");
    for (std::unique_ptr<BatchRing>& ring : rings_)
      ring = std::make_unique<BatchRing>(options_.stage_queue_capacity);
    std::size_t extract_n = options_.extract_workers;
    std::size_t forward_n = options_.forward_workers;
    if (extract_n == 0 && forward_n == 0) {
      // Default split: extract gets the odd worker (it feeds the pipe; the
      // steal path rebalances when forward is the bottleneck). One worker
      // homes on extract and serves every stage through steals.
      extract_n = (options_.workers + 1) / 2;
      forward_n = options_.workers / 2;
    }
    workers_.reserve(extract_n + forward_n);
    for (std::size_t w = 0; w < extract_n; ++w)
      workers_.emplace_back([this] { stage_worker_loop(kPipelineExtract); });
    for (std::size_t w = 0; w < forward_n; ++w)
      workers_.emplace_back([this] { stage_worker_loop(kPipelineForward); });
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
  } else {
    workers_.reserve(options_.workers);
    for (std::size_t w = 0; w < options_.workers; ++w)
      workers_.emplace_back([this] { worker_loop(); });
  }
}

ServeShard::~ServeShard() { shutdown(); }

void ServeShard::note_arrival(std::uint64_t linger_key, Clock::time_point now) {
  const std::lock_guard<std::mutex> lock(arrivals_mutex_);
  if (arrivals_.size() >= kMaxArrivalEntries && arrivals_.count(linger_key) == 0)
    arrivals_.clear();
  ArrivalStats& arrival = arrivals_[linger_key];
  if (arrival.count > 0) {
    const double gap_us = micros_between(arrival.last, now);
    arrival.ewma_us = arrival.count == 1
                          ? gap_us
                          : kArrivalEwmaAlpha * gap_us + (1.0 - kArrivalEwmaAlpha) * arrival.ewma_us;
  }
  arrival.last = now;
  ++arrival.count;
}

Clock::duration ServeShard::effective_linger(std::uint64_t linger_key) const {
  if (!options_.adaptive_linger) return options_.linger;
  const std::lock_guard<std::mutex> lock(arrivals_mutex_);
  const auto it = arrivals_.find(linger_key);
  // Cold kernel: no inter-arrival history (this is the first request, or
  // tracking was recycled), so no observed rate predicts a co-arrival —
  // fire immediately instead of paying the global window.
  if (it == arrivals_.end() || it->second.count < 2) return Clock::duration::zero();
  const auto adaptive = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::micro>(options_.linger_ewma_factor *
                                                it->second.ewma_us));
  return std::min(options_.linger, adaptive);
}

void ServeShard::submit(TuneRequest request, std::shared_ptr<TicketState> state) {
  stats_.record_submit();
  Pending pending;
  pending.tier = request.options.priority;
  pending.enqueued = Clock::now();
  pending.deadline_at = request.options.deadline.count() > 0
                            ? pending.enqueued + request.options.deadline
                            : Clock::time_point::max();
  pending.state = std::move(state);

  if (static_cast<std::size_t>(pending.tier) >= kNumTiers) {
    // Contract: service errors resolve the ticket, they never throw. Stats
    // before resolve, here and on every failure path below: a getter may
    // read a snapshot the instant it wakes, and must see its own outcome
    // already counted.
    stats_.record_failed();
    pending.state->resolve(ServeError{ServeErrorKind::kRejected,
                                      "invalid priority tier in RequestOptions", nullptr});
    return;
  }
  if (governor_ != nullptr) {
    // Multi-tenant admission gate (DESIGN.md §13): quota, then weighted fair
    // share. Out-of-range indices bill the default tenant, same as the
    // facade's unknown-name fallback.
    if (request.tenant >= governor_->tenant_count()) request.tenant = 0;
    const std::uint32_t tenant = request.tenant;
    stats_.record_tenant_submitted(tenant);
    const TenantGovernor::Verdict verdict = governor_->try_admit(tenant);
    if (verdict != TenantGovernor::Verdict::kAdmit) {
      const bool quota = verdict == TenantGovernor::Verdict::kQuotaExceeded;
      stats_.record_tenant_rejected(tenant, quota);
      stats_.record_rejected(pending.tier);
      if (slo_ != nullptr)
        slo_->record(static_cast<std::size_t>(pending.tier), request.route, 0.0,
                     /*error=*/true);
      pending.state->resolve(ServeError{
          ServeErrorKind::kRejected,
          std::string("tenant '") + governor_->spec(tenant).name +
              (quota ? "' is at its in-flight quota" : "' is over its fair share"),
          nullptr});
      return;
    }
    // Balance the admission charge on *every* resolution path: publish runs
    // the cleanup hook exactly once, whatever resolves the ticket (served,
    // rejected downstream, expired, cancelled, shutdown). Set before the
    // state is shared with any other thread.
    pending.state->set_cleanup([this, tenant] { governor_->release(tenant); });
  }
  pending.group_key = util::hash_combine(util::fnv1a(request.machine),
                                         util::fnv1a(request.kernel.name));
  if (options_.adaptive_linger && options_.linger.count() > 0) {
    // Tracked under the *full* structural identity: same-name specs with
    // different params never share a batch, so sharing an arrival history
    // would defeat the cold-kernel skip.
    pending.linger_key = route_key(request.machine, route_fingerprint(request.kernel));
    note_arrival(pending.linger_key, pending.enqueued);
  }

  // Canary split: when an active assignment covers this request's route, a
  // per-route weighted round-robin draws the arm — deterministic in the
  // route's arrival order, exact at the fraction in the limit. The arm is
  // folded into the group key so a grouped forward is all-incumbent or
  // all-canary, never torn.
  {
    std::shared_ptr<const retrain::CanaryAssignment> assignment;
    {
      const std::lock_guard<std::mutex> lock(canary_mutex_);
      assignment = canary_;
    }
    if (assignment != nullptr && assignment->machine == request.machine) {
      const std::uint64_t key = pending.linger_key != 0
                                    ? pending.linger_key
                                    : route_key(request.machine,
                                                route_fingerprint(request.kernel));
      if (assignment->covers(key)) {
        pending.canaried_route = true;
        std::uint64_t n = 0;
        {
          const std::lock_guard<std::mutex> lock(canary_mutex_);
          n = canary_counts_[key]++;
        }
        const double f = assignment->fraction;
        const auto quota = [f](std::uint64_t count) {
          return static_cast<std::uint64_t>(std::floor(f * static_cast<double>(count)));
        };
        if (quota(n + 1) > quota(n)) {
          pending.canary_generation = assignment->generation;
          pending.group_key = util::hash_combine(pending.group_key, assignment->generation);
        }
      }
    }
  }
  const Admission admission = request.options.admission;
  const auto lane = static_cast<std::size_t>(pending.tier);
  const Priority tier = pending.tier;
  const Clock::time_point deadline_at = pending.deadline_at;
  const std::uint64_t route = request.route;
  const std::uint32_t tenant_ix = request.tenant;  // clamped by the gate above
  std::shared_ptr<TicketState> pending_state = pending.state;  // survives the move
  pending.request = std::move(request);
  // Admission refusals burn the SLO error budget: a rejected request is a
  // QoS failure whether or not a worker ever saw it. (The latency argument
  // is ignored for errors — the windowed p95 covers completions only.)
  const auto record_slo_error = [&] {
    if (slo_ != nullptr) slo_->record(lane, route, 0.0, /*error=*/true);
  };

  // Shard-aware admission: Reject/Shed consider the whole shard's backlog,
  // not just their own lane — a backlogged shard refuses sheddable traffic
  // outright instead of trading one queued request for another. (The check
  // is advisory across lanes, so a racing admit may land at the boundary;
  // the limit bounds the steady state, not a single instant.)
  if (options_.shard_backlog_limit > 0 && admission != Admission::kBlock &&
      queue_.size() >= options_.shard_backlog_limit) {
    stats_.record_rejected(tier);
    stats_.record_tenant_failed(tenant_ix);
    record_slo_error();
    pending_state->resolve(ServeError{
        ServeErrorKind::kRejected,
        "shard backlog at limit (" + std::to_string(options_.shard_backlog_limit) + ")",
        nullptr});
    return;
  }

  auto pushed = TieredQueue<Pending>::PushResult::kClosed;
  switch (admission) {
    case Admission::kReject:
      pushed = queue_.try_push(std::move(pending), lane);
      break;
    case Admission::kShed: {
      std::optional<Pending> shed;
      pushed = queue_.push_shedding(std::move(pending), lane, shed);
      if (shed.has_value()) {
        // Two-phase like every worker path: the victim's getter must see its
        // own shed in a snapshot taken the moment it wakes — and a victim a
        // cancel already claimed counts as cancelled, not shed.
        stats_.record_tenant_failed(shed->request.tenant);
        if (shed->state->try_claim()) {
          stats_.record_shed(shed->tier);
          if (slo_ != nullptr)
            slo_->record(static_cast<std::size_t>(shed->tier), shed->request.route, 0.0,
                         /*error=*/true);
          shed->state->publish(ServeError{ServeErrorKind::kRejected,
                                          "shed: displaced by a newer request", nullptr});
        } else {
          stats_.record_cancelled(shed->tier);
        }
      }
      break;
    }
    case Admission::kBlock:
      // Bounded push: the request's own deadline caps how long the caller
      // stalls on a full lane.
      pushed = deadline_at == Clock::time_point::max()
                   ? queue_.push(std::move(pending), lane)
                   : queue_.push_until(std::move(pending), lane, deadline_at);
      break;
  }

  switch (pushed) {
    case TieredQueue<Pending>::PushResult::kOk:
      stats_.record_admitted(tier);
      stats_.record_tenant_admitted(tenant_ix);
      break;
    case TieredQueue<Pending>::PushResult::kFull:
      stats_.record_tenant_failed(tenant_ix);
      if (admission == Admission::kBlock) {
        stats_.record_expired(tier);
        record_slo_error();
        pending_state->resolve(ServeError{ServeErrorKind::kDeadlineExceeded,
                                          "deadline elapsed while blocked on a full lane",
                                          nullptr});
      } else {
        stats_.record_rejected(tier);
        record_slo_error();
        pending_state->resolve(ServeError{
            ServeErrorKind::kRejected,
            std::string("lane '") + to_string(tier) + "' is at capacity", nullptr});
      }
      break;
    case TieredQueue<Pending>::PushResult::kClosed: {
      const char* detail = "TuningService: submit after shutdown";
      stats_.record_rejected(tier);
      stats_.record_tenant_failed(tenant_ix);
      record_slo_error();
      pending_state->resolve(ServeError{ServeErrorKind::kRejected, detail,
                                        std::make_exception_ptr(std::runtime_error(detail))});
      break;
    }
  }
}

bool ServeShard::sweep(Pending& pending, Clock::time_point now) {
  if (pending.state->cancel_requested()) {
    // The ticket already resolved itself with kCancelled; just account for
    // it and free the slot.
    stats_.record_cancelled(pending.tier);
    stats_.record_tenant_failed(pending.request.tenant);
    return true;
  }
  if (now >= pending.deadline_at) {
    if (pending.state->try_claim()) {
      stats_.record_expired(pending.tier);
      stats_.record_tenant_failed(pending.request.tenant);
      record_outcome(pending, micros_between(pending.enqueued, now), /*error=*/true,
                     obs::Exemplar::Kind::kDeadline, now, nullptr);
      pending.state->publish(ServeError{ServeErrorKind::kDeadlineExceeded,
                                        "deadline expired before the grouped forward",
                                        nullptr});
    }
    return true;
  }
  return false;
}

template <typename Match>
void ServeShard::linger_batch(std::vector<Pending>& batch, const Match& match,
                              Clock::time_point pop_time, Clock::duration window) {
  const Clock::time_point linger_end = pop_time + window;
  const auto interactive_lane = static_cast<std::size_t>(Priority::kInteractive);
  for (;;) {
    // A waiting interactive request trumps batch growth: fire now so this
    // worker frees up to serve the interactive lane. Same for an interactive
    // rider already drained into this bulk-headed batch — it must not sit
    // out the window.
    if (queue_.size(interactive_lane) > 0) return;
    for (const Pending& pending : batch)
      if (pending.tier == Priority::kInteractive) return;
    // Prune dead members now rather than at the final sweep: a cancelled or
    // expiring rider must neither clamp fire_at nor hold a batch slot.
    const Clock::time_point now = Clock::now();
    for (auto it = batch.begin(); it != batch.end();)
      it = sweep(*it, now) ? batch.erase(it) : it + 1;
    if (batch.empty()) return;
    Clock::time_point fire_at = linger_end;
    for (const Pending& pending : batch)
      if (pending.deadline_at != Clock::time_point::max())
        fire_at = std::min(fire_at, pending.deadline_at - kDeadlineGuard);
    if (batch.size() >= options_.max_batch || now >= fire_at) return;
    const std::uint64_t epoch = queue_.push_epoch();
    // Re-drain after every push; a non-matching push just re-arms the wait.
    if (queue_.drain_matching(match, options_.max_batch - batch.size(), batch) == 0 &&
        !queue_.wait_push(epoch, fire_at))
      return;  // window elapsed (or queue closed) with no new arrivals
  }
}

void ServeShard::worker_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(pause_mutex_);
      pause_cv_.wait(lock, [&] { return pause_count_ == 0 || draining_; });
    }
    std::optional<Pending> first = queue_.try_pop();
    if (!first.has_value()) {
      if (queue_.closed()) return;  // closed and fully drained
      queue_.wait_nonempty();
      continue;  // re-check the pause gate before claiming work
    }

    const Clock::time_point pop_time = Clock::now();
    worker_beat_.beat();  // one pop = one retired work unit
    if (sweep(*first, pop_time)) continue;

    std::vector<Pending> batch;
    batch.reserve(options_.max_batch);
    batch.push_back(std::move(*first));
    // Copies, not refs into the batch: linger pruning may erase any member
    // (including the head) while the match predicate stays live.
    const std::uint64_t key = batch.front().group_key;
    const corpus::KernelSpec kernel = batch.front().request.kernel;
    const std::string machine = batch.front().request.machine;
    const auto match = [&](const Pending& p) {
      // Full spec equality: a name may be shared by specs with different
      // params, which must not ride one batch (the hash of machine+name is
      // only the cheap first-pass reject).
      return p.group_key == key && p.request.machine == machine && p.request.kernel == kernel;
    };
    if (options_.max_batch > 1) {
      queue_.drain_matching(match, options_.max_batch - 1, batch);
      // Time-based linger: wait for same-kernel co-arrivals, clamped by the
      // earliest deadline in the batch. Interactive heads fire immediately —
      // that tier trades batch size for latency by definition.
      if (options_.linger.count() > 0 && batch.size() < options_.max_batch &&
          batch.front().tier != Priority::kInteractive) {
        const Clock::duration window = effective_linger(batch.front().linger_key);
        if (window.count() > 0) linger_batch(batch, match, pop_time, window);
      }
    }

    // Final sweep before the expensive half: cancelled or expired requests
    // must not cost a feature extraction or widen the forward.
    const Clock::time_point fire_time = Clock::now();
    std::vector<Pending> live;
    live.reserve(batch.size());
    for (Pending& pending : batch)
      if (!sweep(pending, fire_time)) live.push_back(std::move(pending));
    if (live.empty()) continue;
    if (obs::enabled() && live.front().request.trace) {
      // One dequeue span per batch (pop → assembled, i.e. drain + linger),
      // attributed to the head. It overlaps the tail of the members'
      // queue-wait spans, so stage attribution never double-counts it.
      obs::TraceCollector::instance().record_span(
          live.front().request.trace.id, obs::Stage::kDequeue,
          static_cast<std::uint32_t>(options_.shard_index), pop_time, fire_time);
    }
    process_batch(live);
  }
}

void ServeShard::process_batch(std::vector<Pending>& batch) {
  const Clock::time_point fire_time = Clock::now();
  // Stage boundaries inside the compute half, always measured (two extra
  // clock reads per *batch*): resolve+cache → extract_done, profiling memo →
  // profile_done, forward+decode → done_time. They feed the extract/forward
  // stage means in ServiceStats and, when tracing is armed, per-member spans.
  Clock::time_point extract_done = fire_time;
  Clock::time_point profile_done = fire_time;
  Clock::time_point labels_done = fire_time;
  std::vector<hwsim::OmpConfig> configs;
  std::vector<int> labels;
  std::vector<hwsim::PapiCounters> counters;
  bool cache_hit = false;
  bool used_compiled = false;
  bool plan_layout_hit = false;
  // Resolved exactly once per batch: every member is served by one (tuner,
  // tag, generation) triple — during a hot swap a batch is consistently
  // old-model or consistently new-model, never torn.
  ModelRegistry::Resolved resolved;
  std::shared_ptr<const FeatureCache::Entry> entry;
  try {
    // Key the cache on the registration tag, not the machine name: a
    // hot-swapped tuner under the same name must not hit entries whose
    // scaled vectors were fitted against the old tuner's corpus. (Canary
    // candidates carry their own tag, so the two arms never share entries.)
    resolved = registry_->resolve(batch.front().request.machine);
    const std::uint64_t want = batch.front().canary_generation;
    if (want != 0 && want > resolved.generation) {
      // The batch drew the canary arm at submit. Serve the staged candidate
      // if it is still the one the arm was drawn for; otherwise the rollout
      // ended meanwhile — a promoted candidate is the incumbent now (same
      // generation, caught by the `want > generation` guard), a rolled-back
      // one is replaced by the incumbent.
      const std::optional<ModelRegistry::Resolved> canary =
          registry_->try_resolve_canary(batch.front().request.machine);
      if (canary.has_value() && canary->generation == want) resolved = *canary;
    }
    const std::shared_ptr<const core::MgaTuner>& tuner = resolved.tuner;
    entry = cache_.get(batch.front().request.kernel, *tuner, resolved.tag, &cache_hit);
    extract_done = Clock::now();

    counters.reserve(batch.size());
    for (const Pending& pending : batch)
      counters.push_back(pending.request.counters
                             ? *pending.request.counters
                             : cache_.counters_for(*entry, *tuner, pending.request.input_bytes));
    profile_done = Clock::now();
    // Forward stage: the compiled plan when the resolved generation carries
    // one (bit-identical to the interpreter — see tests/test_runtime.cpp),
    // the interpreter when compilation failed for this generation, when a
    // plan execution throws, or when compiled_runtime is off.
    if (options_.compiled_runtime && resolved.plan != nullptr) {
      try {
        labels = resolved.plan->predict_labels(entry->features.graph,
                                               entry->features.scaled_vector, counters,
                                               &plan_layout_hit);
        used_compiled = true;
      } catch (...) {
        labels.clear();  // fall back; the split counters make this visible
      }
    }
    if (!used_compiled) labels = tuner->predict_labels(entry->features, counters);
    labels_done = Clock::now();
    configs.reserve(labels.size());
    for (const int label : labels)
      configs.push_back(tuner->space()[static_cast<std::size_t>(label)]);
  } catch (...) {
    const ServeError error = classify_batch_exception();
    const Clock::time_point now = Clock::now();
    for (Pending& pending : batch) {
      stats_.record_tenant_failed(pending.request.tenant);
      if (pending.state->try_claim()) {
        stats_.record_failed();
        record_outcome(pending, micros_between(pending.enqueued, now), /*error=*/true,
                       obs::Exemplar::Kind::kError, now, nullptr);
        pending.state->publish(error);
      } else {
        stats_.record_cancelled(pending.tier);  // a cancel won the race
      }
    }
    return;
  }

  const Clock::time_point done_time = Clock::now();
  const double compute_us = micros_between(fire_time, done_time);
  const double extract_us = micros_between(fire_time, extract_done);
  const double forward_us = micros_between(profile_done, done_time);
  const bool traced = obs::enabled();
  const auto shard_id = static_cast<std::uint32_t>(options_.shard_index);
  stats_.record_batch(batch.size());
  stats_.record_forward_path(used_compiled, plan_layout_hit);
  {
    // Process-wide mirror of the per-shard split (one relaxed add per batch;
    // the instruments are interned once).
    auto& registry = obs::MetricsRegistry::global();
    static obs::Counter& compiled_total = registry.counter(
        "runtime.forwards_compiled", "grouped forwards executed by the compiled plan");
    static obs::Counter& interpreted_total = registry.counter(
        "runtime.forwards_interpreted", "grouped forwards executed by the interpreter");
    (used_compiled ? compiled_total : interpreted_total).add();
    if (used_compiled) {
      static obs::Counter& layout_hits = registry.counter(
          "runtime.plan_layout_hits", "plan shape-bucket layouts reused from cache");
      static obs::Counter& layout_misses = registry.counter(
          "runtime.plan_layout_misses", "plan shape-bucket layouts planned on first sight");
      (plan_layout_hit ? layout_hits : layout_misses).add();
    }
  }
  std::vector<std::size_t> served;
  if (observer_) served.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    TuneResult result;
    result.config = configs[i];
    result.cache_hit = cache_hit;
    result.batch_size = batch.size();
    result.model_generation = resolved.generation;
    result.canary = resolved.canary;
    result.latency_us = micros_between(batch[i].enqueued, done_time);
    result.queue_wait_us = micros_between(batch[i].enqueued, fire_time);
    result.compute_us = compute_us;
    result.trace_id = batch[i].request.trace.id;
    if (traced && batch[i].request.trace) {
      // Every member carries the full batch-level compute intervals: its own
      // latency includes the whole grouped forward, so per-request stage
      // attribution is exact even though the work was shared.
      obs::TraceCollector& collector = obs::TraceCollector::instance();
      const std::uint64_t id = batch[i].request.trace.id;
      collector.record_span(id, obs::Stage::kQueueWait, shard_id, batch[i].enqueued, fire_time);
      collector.record_span(id,
                            cache_hit ? obs::Stage::kCacheLookup : obs::Stage::kFeatureExtract,
                            shard_id, fire_time, extract_done);
      collector.record_span(id, obs::Stage::kProfile, shard_id, extract_done, profile_done);
      collector.record_span(id, obs::Stage::kForward, shard_id, profile_done, done_time);
      // Plan execution nests inside the forward span (it is the
      // predict_labels slice, before config decode); the stage partition
      // keeps attributing the full window to kForward.
      if (used_compiled)
        collector.record_span(id, obs::Stage::kPlanExecute, shard_id, profile_done,
                              labels_done);
    }
    if (batch[i].state->try_claim()) {
      // Stats before publish: a getter may read a snapshot as soon as it
      // wakes, and must see its own completion in it.
      stats_.record_completion(result.latency_us, result.queue_wait_us, compute_us,
                               extract_us, forward_us, batch[i].tier);
      stats_.record_tenant_completed(batch[i].request.tenant, result.latency_us);
      // Legacy engine: no PipelineBatch timestamps, so a slow exemplar keeps
      // the coarse whole-life span only.
      record_outcome(batch[i], result.latency_us, /*error=*/false,
                     obs::Exemplar::Kind::kSlow, done_time, nullptr);
      // Split-path attribution: what actually served the request, not what
      // the submit-time draw intended (they differ across promote/rollback).
      if (resolved.canary) {
        stats_.record_canary_served();
      } else if (batch[i].canaried_route) {
        stats_.record_canary_incumbent();
      }
      batch[i].state->publish(TuneOutcome(std::move(result)));
      if (observer_) served.push_back(i);
    } else {
      // A cancel won the race mid-forward: the work is spent, the outcome
      // is the caller's kCancelled.
      stats_.record_cancelled(batch[i].tier);
      stats_.record_tenant_failed(batch[i].request.tenant);
    }
  }
  if (traced && batch.front().request.trace) {
    // One publish span per batch (done → outcomes delivered); it sits past
    // the latency endpoint, so it is trace-visible but not attributed.
    obs::TraceCollector::instance().record_span(batch.front().request.trace.id,
                                                obs::Stage::kPublish, shard_id, done_time,
                                                Clock::now());
  }

  // Observation feed (retrain subsystem): after every outcome is published —
  // the scoring runs per config in the space, and must never sit between a
  // caller and its result. Cancelled members are not observations: their
  // prediction was never delivered.
  if (observer_) {
    for (const std::size_t i : served) {
      const retrain::ServedSample sample{batch[i].request.machine,
                                         batch[i].request.kernel,
                                         entry->features.workload,
                                         batch[i].request.input_bytes,
                                         counters[i],
                                         labels[i],
                                         resolved.generation,
                                         *resolved.tuner};
      observer_(sample);
    }
  }
}

// ---------------------------------------------------------------------------
// Pipelined engine (DESIGN.md §11).
//
// The dispatcher is the queue's only consumer: it pops arrivals into
// per-group forming batches, runs the whole batching policy there (linger
// windows, deadline clamp, interactive expedite, max_batch seal), and hands
// sealed batches to the extract ring. This kills the two scaling costs of
// the legacy loop in one move — workers no longer contend on the queue's
// mutex/CV at all, and batch formation is a per-item O(1) map insert
// instead of each worker's O(queue-depth) drain_matching scan.

void ServeShard::dispatcher_loop() {
  struct Forming {
    std::vector<Pending> members;
    corpus::KernelSpec kernel;  // copies: full-spec match within a hash chain
    std::string machine;
    Clock::time_point fire_at;
  };
  // group_key → forming batches. A chain holds hash-colliding groups (and
  // same-name specs with different params) side by side, exactly like the
  // legacy full-spec match predicate.
  std::unordered_map<std::uint64_t, std::vector<Forming>> forming;

  const auto seal = [&](Forming& f) {
    auto batch = std::make_unique<PipelineBatch>();
    batch->members = std::move(f.members);
    batch->sealed = Clock::now();
    stats_.record_dispatched();
    dispatcher_beat_.beat();  // one sealed batch = one retired dispatch unit
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    for (;;) {
      const std::uint64_t epoch = work_signal_.epoch();
      if (rings_[kPipelineExtract]->try_push(batch)) break;
      // Extract ring full: park until a worker frees a slot. Workers never
      // park while work exists (they help drain full rings), so this wait
      // always terminates — and backpressure lands where it belongs, on the
      // queue the admission policy watches.
      work_signal_.wait(epoch);
    }
    work_signal_.notify();
  };

  // Seal every batch that is due (window closed, full, or deadline-clamped)
  // — or everything, on the final flush. Sealing order is lane order, then
  // head age: the rings are FIFO, so an expedited interactive batch must
  // enter the extract ring ahead of the bulk batches sealed in the same
  // pass, or the priority the TieredQueue gave it evaporates here.
  const auto seal_due = [&](Clock::time_point now, bool flush_all) {
    std::vector<Forming> due;
    for (auto it = forming.begin(); it != forming.end();) {
      std::vector<Forming>& chain = it->second;
      for (auto f = chain.begin(); f != chain.end();) {
        // Prune members that died while the window was open: a cancelled or
        // expiring rider must neither clamp fire_at nor hold a batch slot.
        for (auto m = f->members.begin(); m != f->members.end();)
          m = sweep(*m, now) ? f->members.erase(m) : m + 1;
        if (f->members.empty()) {
          f = chain.erase(f);
          forming_count_.fetch_sub(1, std::memory_order_relaxed);
        } else if (flush_all || now >= f->fire_at ||
                   f->members.size() >= options_.max_batch) {
          due.push_back(std::move(*f));
          f = chain.erase(f);
          forming_count_.fetch_sub(1, std::memory_order_relaxed);
        } else {
          ++f;
        }
      }
      it = chain.empty() ? forming.erase(it) : std::next(it);
    }
    if (due.empty()) return;
    const auto rank = [](const Forming& f) {
      std::size_t lane = kNumTiers;
      Clock::time_point oldest = Clock::time_point::max();
      for (const Pending& p : f.members) {
        lane = std::min(lane, static_cast<std::size_t>(p.tier));
        oldest = std::min(oldest, p.enqueued);
      }
      return std::make_pair(lane, oldest);
    };
    std::sort(due.begin(), due.end(),
              [&](const Forming& a, const Forming& b) { return rank(a) < rank(b); });
    for (Forming& f : due) seal(f);
  };

  // Folds one popped request into its forming window. Returns true when the
  // window just reached max_batch — the drain loop must seal due batches
  // *before* popping further, or a deep backlog would grow windows without
  // bound (the seal-time size check alone only fires once per drain pass).
  const auto ingest = [&](Pending&& p, Clock::time_point now) -> bool {
    std::vector<Forming>& chain = forming[p.group_key];
    Forming* home = nullptr;
    for (Forming& f : chain) {
      // Full spec equality: a name may be shared by specs with different
      // params, which must not ride one batch (the machine+name hash is only
      // the cheap first-pass reject).
      if (f.machine == p.request.machine && f.kernel == p.request.kernel) {
        home = &f;
        break;
      }
    }
    const bool interactive = p.tier == Priority::kInteractive;
    if (home == nullptr) {
      Forming f;
      f.kernel = p.request.kernel;
      f.machine = p.request.machine;
      // Interactive heads and drain-only configs fire in this pass; bulk
      // heads open their (adaptively clamped) linger window.
      Clock::duration window = Clock::duration::zero();
      if (!interactive && options_.max_batch > 1 && options_.linger.count() > 0)
        window = effective_linger(p.linger_key);
      f.fire_at = now + window;
      if (p.deadline_at != Clock::time_point::max())
        f.fire_at = std::min(f.fire_at, p.deadline_at - kDeadlineGuard);
      f.members.push_back(std::move(p));
      chain.push_back(std::move(f));
      forming_count_.fetch_add(1, std::memory_order_relaxed);
      home = &chain.back();
    } else {
      if (p.deadline_at != Clock::time_point::max())
        home->fire_at = std::min(home->fire_at, p.deadline_at - kDeadlineGuard);
      // An interactive rider seals the batch it joins — it must not sit out
      // a bulk head's window.
      if (interactive) home->fire_at = now;
      home->members.push_back(std::move(p));
    }
    if (interactive) {
      // Parity with the legacy yield rule: queued interactive traffic cuts
      // every open linger window so the pipe turns over to serve it.
      for (auto& [key, group] : forming)
        for (Forming& f : group) f.fire_at = std::min(f.fire_at, now);
    }
    return home->members.size() >= options_.max_batch;
  };

  // Revive path: a chaos-killed predecessor stashed its forming members.
  // Re-ingest them first — they re-open windows and seal when due, so no
  // admitted ticket is ever lost to a kill/revive cycle.
  {
    std::vector<Pending> orphans;
    {
      const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
      orphans.swap(orphaned_);
      orphaned_count_.store(0, std::memory_order_relaxed);
    }
    const Clock::time_point now = Clock::now();
    for (Pending& p : orphans)
      if (!sweep(p, now) && ingest(std::move(p), now)) seal_due(now, false);
  }

  for (;;) {
    if (chaos_dispatcher_kill_.load(std::memory_order_acquire)) {
      // Chaos seam: die like a crashed thread. Forming members are stashed
      // for the next incarnation; dispatcher_done_ stays false, so stage
      // workers park exactly as they would behind a truly dead dispatcher
      // and the watchdog's pending-with-no-beats probe turns kViolating.
      std::vector<Pending> orphans;
      for (auto& [key, chain] : forming)
        for (Forming& f : chain)
          for (Pending& m : f.members) orphans.push_back(std::move(m));
      forming.clear();
      forming_count_.store(0, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
      for (Pending& m : orphans) orphaned_.push_back(std::move(m));
      orphaned_count_.store(orphaned_.size(), std::memory_order_relaxed);
      dispatcher_dead_ = true;
      return;
    }
    {
      // The pause gate sits between the wait and the pop: while paused the
      // dispatcher parks *without* holding a blocking pop, so submissions
      // stay in the TieredQueue where admission limits can see them.
      std::unique_lock<std::mutex> lock(pause_mutex_);
      pause_cv_.wait(lock, [&] { return pause_count_ == 0 || draining_; });
    }
    const std::uint64_t epoch = queue_.push_epoch();
    while (std::optional<Pending> p = queue_.try_pop()) {
      const Clock::time_point now = Clock::now();
      p->popped = now;
      dispatcher_beat_.beat();  // one pop = one retired intake unit
      // A window hitting max_batch seals mid-drain (lane-sorted, so a
      // pending interactive window still enters the ring first); windows
      // merely *due* keep forming until the drain pass ends, which is what
      // lets a drained backlog fill batches even with linger == 0.
      if (!sweep(*p, now) && ingest(std::move(*p), now)) seal_due(now, false);
    }
    seal_due(Clock::now(), /*flush_all=*/false);
    if (queue_.closed() && queue_.size() == 0) {
      seal_due(Clock::now(), /*flush_all=*/true);
      break;
    }
    Clock::time_point next_fire = Clock::time_point::max();
    for (const auto& [key, chain] : forming)
      for (const Forming& f : chain) next_fire = std::min(next_fire, f.fire_at);
    // Idle bound instead of time_point::max(): some wait_until
    // implementations overflow on max(); an hourly spurious wake is free.
    if (next_fire == Clock::time_point::max())
      next_fire = Clock::now() + std::chrono::hours(1);
    (void)queue_.wait_push(epoch, next_fire);
  }
  dispatcher_done_.store(true, std::memory_order_release);
  work_signal_.notify();
}

void ServeShard::stage_worker_loop(std::size_t home) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(pause_mutex_);
      pause_cv_.wait(lock, [&] { return pause_count_ == 0 || draining_; });
    }
    const std::uint64_t epoch = work_signal_.epoch();
    if (claim_and_run(home)) continue;
    if (dispatcher_done_.load(std::memory_order_acquire) &&
        in_flight_.load(std::memory_order_acquire) == 0)
      return;  // pipeline drained: nothing in the rings, nothing coming
    work_signal_.wait(epoch);
  }
}

bool ServeShard::claim_and_run(std::size_t home) {
  // Publish first — finished work must reach its caller (and frees a batch)
  // before new work is admitted deeper into the pipe — then the home ring,
  // then steal from the sibling stage so a skewed extract/forward mix
  // cannot stall half the pool.
  const std::size_t sibling =
      home == kPipelineExtract ? kPipelineForward : kPipelineExtract;
  for (const std::size_t stage : {kPipelinePublish, home, sibling}) {
    std::optional<std::unique_ptr<PipelineBatch>> batch = rings_[stage]->try_pop();
    if (!batch.has_value()) continue;
    if (stage == sibling) stats_.record_steal();
    work_signal_.notify();  // the freed slot may unblock a pusher
    run_stage(stage, std::move(*batch));
    return true;
  }
  return false;
}

void ServeShard::run_stage(std::size_t stage, std::unique_ptr<PipelineBatch> batch) {
  // Test seam: a hook that blocks here wedges this stage with the batch
  // already claimed — exactly the stall shape the watchdog must catch.
  if (options_.stage_hook) options_.stage_hook(stage);
  switch (stage) {
    case kPipelineExtract:
      run_extract(std::move(batch));
      break;
    case kPipelineForward:
      run_forward(std::move(batch));
      break;
    default:
      run_publish(std::move(batch));
      break;
  }
  stage_beats_[stage].beat();  // one batch retired through this stage
}

void ServeShard::push_or_help(std::size_t dest, std::unique_ptr<PipelineBatch> batch) {
  for (;;) {
    const std::uint64_t epoch = work_signal_.epoch();
    if (rings_[dest]->try_push(batch)) {
      work_signal_.notify();
      return;
    }
    // Ring full. Parking here can deadlock a small pool — this thread may be
    // the destination ring's only consumer — so help instead: run one batch
    // from the full ring (which may recursively help the next ring; the
    // chain terminates at publish), then retry the push.
    if (std::optional<std::unique_ptr<PipelineBatch>> helped = rings_[dest]->try_pop()) {
      work_signal_.notify();
      run_stage(dest, std::move(*helped));
      continue;
    }
    work_signal_.wait(epoch);  // raced with other helpers: wait for space
  }
}

void ServeShard::fail_batch(PipelineBatch& batch, const ServeError& error) {
  const Clock::time_point now = Clock::now();
  for (Pending& pending : batch.members) {
    stats_.record_tenant_failed(pending.request.tenant);
    if (pending.state->try_claim()) {
      stats_.record_failed();
      record_outcome(pending, micros_between(pending.enqueued, now), /*error=*/true,
                     obs::Exemplar::Kind::kError, now, nullptr);
      pending.state->publish(error);
    } else {
      stats_.record_cancelled(pending.tier);  // a cancel won the race
    }
  }
}

void ServeShard::finish_batch() {
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  work_signal_.notify();  // drain waiters re-check the exit condition
}

void ServeShard::run_extract(std::unique_ptr<PipelineBatch> batch) {
  const Clock::time_point start = Clock::now();
  batch->extract_start = start;
  // Final sweep at stage entry: members cancelled or expired while the batch
  // sat sealed in the ring must not cost an extraction or widen the forward.
  std::vector<Pending>& members = batch->members;
  for (auto it = members.begin(); it != members.end();)
    it = sweep(*it, start) ? members.erase(it) : it + 1;
  if (members.empty()) {
    finish_batch();
    return;
  }
  try {
    // Resolved exactly once per batch (same contract as the legacy path):
    // every member is served by one (tuner, tag, generation) triple, so a
    // batch is consistently old-model or new-model across a hot swap.
    batch->resolved = registry_->resolve(members.front().request.machine);
    const std::uint64_t want = members.front().canary_generation;
    if (want != 0 && want > batch->resolved.generation) {
      const std::optional<ModelRegistry::Resolved> canary =
          registry_->try_resolve_canary(members.front().request.machine);
      if (canary.has_value() && canary->generation == want) batch->resolved = *canary;
    }
    const std::shared_ptr<const core::MgaTuner>& tuner = batch->resolved.tuner;
    batch->entry = cache_.get(members.front().request.kernel, *tuner, batch->resolved.tag,
                              &batch->cache_hit);
    batch->cache_done = Clock::now();
    batch->counters.reserve(members.size());
    for (const Pending& pending : members)
      batch->counters.push_back(
          pending.request.counters
              ? *pending.request.counters
              : cache_.counters_for(*batch->entry, *tuner, pending.request.input_bytes));
    batch->profile_done = Clock::now();
  } catch (...) {
    fail_batch(*batch, classify_batch_exception());
    stats_.record_stage_busy(kPipelineExtract, micros_between(start, Clock::now()));
    finish_batch();
    return;
  }
  stats_.record_stage_busy(kPipelineExtract, micros_between(start, batch->profile_done));
  push_or_help(kPipelineForward, std::move(batch));
}

void ServeShard::run_forward(std::unique_ptr<PipelineBatch> batch) {
  const Clock::time_point start = Clock::now();
  batch->forward_start = start;
  try {
    const std::shared_ptr<const core::MgaTuner>& tuner = batch->resolved.tuner;
    // Compiled plan when the resolved generation carries one; interpreter as
    // the fallback and the bit-identity reference — same split as legacy.
    if (options_.compiled_runtime && batch->resolved.plan != nullptr) {
      try {
        batch->labels = batch->resolved.plan->predict_labels(
            batch->entry->features.graph, batch->entry->features.scaled_vector,
            batch->counters, &batch->plan_layout_hit);
        batch->used_compiled = true;
      } catch (...) {
        batch->labels.clear();  // fall back; the split counters make this visible
      }
    }
    if (!batch->used_compiled)
      batch->labels = tuner->predict_labels(batch->entry->features, batch->counters);
    batch->labels_done = Clock::now();
    batch->configs.reserve(batch->labels.size());
    for (const int label : batch->labels)
      batch->configs.push_back(tuner->space()[static_cast<std::size_t>(label)]);
  } catch (...) {
    fail_batch(*batch, classify_batch_exception());
    stats_.record_stage_busy(kPipelineForward, micros_between(start, Clock::now()));
    finish_batch();
    return;
  }
  batch->forward_done = Clock::now();
  stats_.record_stage_busy(kPipelineForward, micros_between(start, batch->forward_done));
  push_or_help(kPipelinePublish, std::move(batch));
}

void ServeShard::run_publish(std::unique_ptr<PipelineBatch> batch) {
  const Clock::time_point publish_start = Clock::now();
  std::vector<Pending>& members = batch->members;
  // Per-member timing (pipelined semantics): latency runs to publish pickup,
  // queue_wait to extract pickup, and compute is the span between — the
  // three sum exactly, with inter-stage ring time inside compute where the
  // dispatch_wait trace sub-spans break it out.
  const double compute_us = micros_between(batch->extract_start, publish_start);
  const double extract_us = micros_between(batch->extract_start, batch->cache_done);
  const double forward_us = micros_between(batch->forward_start, batch->forward_done);
  const bool traced = obs::enabled();
  const auto shard_id = static_cast<std::uint32_t>(options_.shard_index);
  stats_.record_batch(members.size());
  stats_.record_forward_path(batch->used_compiled, batch->plan_layout_hit);
  {
    // Process-wide mirror of the per-shard split (one relaxed add per batch;
    // the instruments are interned once).
    auto& registry = obs::MetricsRegistry::global();
    static obs::Counter& compiled_total = registry.counter(
        "runtime.forwards_compiled", "grouped forwards executed by the compiled plan");
    static obs::Counter& interpreted_total = registry.counter(
        "runtime.forwards_interpreted", "grouped forwards executed by the interpreter");
    (batch->used_compiled ? compiled_total : interpreted_total).add();
    if (batch->used_compiled) {
      static obs::Counter& layout_hits = registry.counter(
          "runtime.plan_layout_hits", "plan shape-bucket layouts reused from cache");
      static obs::Counter& layout_misses = registry.counter(
          "runtime.plan_layout_misses", "plan shape-bucket layouts planned on first sight");
      (batch->plan_layout_hit ? layout_hits : layout_misses).add();
    }
  }
  std::vector<std::size_t> served;
  if (observer_) served.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    Pending& member = members[i];
    TuneResult result;
    result.config = batch->configs[i];
    result.cache_hit = batch->cache_hit;
    result.batch_size = members.size();
    result.model_generation = batch->resolved.generation;
    result.canary = batch->resolved.canary;
    result.latency_us = micros_between(member.enqueued, publish_start);
    result.queue_wait_us = micros_between(member.enqueued, batch->extract_start);
    result.compute_us = compute_us;
    result.trace_id = member.request.trace.id;
    if (traced && member.request.trace) {
      // The legacy kQueueWait span is split into its three scheduler phases
      // (admission_wait / linger_wait / dispatch_wait); together with the
      // stage spans they partition the member's full latency, so per-request
      // attribution stays exact even though the work was shared.
      obs::TraceCollector& collector = obs::TraceCollector::instance();
      const std::uint64_t id = member.request.trace.id;
      collector.record_span(id, obs::Stage::kAdmissionWait, shard_id, member.enqueued,
                            member.popped);
      collector.record_span(id, obs::Stage::kLingerWait, shard_id, member.popped,
                            batch->sealed);
      collector.record_span(id, obs::Stage::kDispatchWait, shard_id, batch->sealed,
                            batch->extract_start);
      collector.record_span(
          id, batch->cache_hit ? obs::Stage::kCacheLookup : obs::Stage::kFeatureExtract,
          shard_id, batch->extract_start, batch->cache_done);
      collector.record_span(id, obs::Stage::kProfile, shard_id, batch->cache_done,
                            batch->profile_done);
      collector.record_span(id, obs::Stage::kDispatchWait, shard_id, batch->profile_done,
                            batch->forward_start);
      collector.record_span(id, obs::Stage::kForward, shard_id, batch->forward_start,
                            batch->forward_done);
      // Plan execution nests inside the forward span (the predict_labels
      // slice, before config decode), exactly as in the legacy path.
      if (batch->used_compiled)
        collector.record_span(id, obs::Stage::kPlanExecute, shard_id, batch->forward_start,
                              batch->labels_done);
      collector.record_span(id, obs::Stage::kDispatchWait, shard_id, batch->forward_done,
                            publish_start);
    }
    if (member.state->try_claim()) {
      // Stats before publish: a getter may read a snapshot as soon as it
      // wakes, and must see its own completion in it.
      stats_.record_completion(result.latency_us, result.queue_wait_us, compute_us,
                               extract_us, forward_us, member.tier);
      stats_.record_tenant_completed(member.request.tenant, result.latency_us);
      record_outcome(member, result.latency_us, /*error=*/false, obs::Exemplar::Kind::kSlow,
                     publish_start, batch.get());
      // Split-path attribution: what actually served the request, not what
      // the submit-time draw intended (they differ across promote/rollback).
      if (batch->resolved.canary) {
        stats_.record_canary_served();
      } else if (member.canaried_route) {
        stats_.record_canary_incumbent();
      }
      member.state->publish(TuneOutcome(std::move(result)));
      if (observer_) served.push_back(i);
    } else {
      stats_.record_cancelled(member.tier);  // a cancel won the race mid-pipe
      stats_.record_tenant_failed(member.request.tenant);
    }
  }
  if (traced && members.front().request.trace) {
    // One publish span per batch (pickup → outcomes delivered); it sits past
    // the latency endpoint, so it is trace-visible but not attributed.
    obs::TraceCollector::instance().record_span(members.front().request.trace.id,
                                                obs::Stage::kPublish, shard_id,
                                                publish_start, Clock::now());
  }
  // Observation feed (retrain subsystem): after every outcome is published —
  // the scoring runs per config in the space, and must never sit between a
  // caller and its result. Cancelled members are not observations.
  if (observer_) {
    for (const std::size_t i : served) {
      const retrain::ServedSample sample{members[i].request.machine,
                                         members[i].request.kernel,
                                         batch->entry->features.workload,
                                         members[i].request.input_bytes,
                                         batch->counters[i],
                                         batch->labels[i],
                                         batch->resolved.generation,
                                         *batch->resolved.tuner};
      observer_(sample);
    }
  }
  stats_.record_stage_busy(kPipelinePublish, micros_between(publish_start, Clock::now()));
  finish_batch();
}

void ServeShard::pause() {
  const std::lock_guard<std::mutex> lock(pause_mutex_);
  ++pause_count_;
}

void ServeShard::resume() {
  {
    const std::lock_guard<std::mutex> lock(pause_mutex_);
    if (pause_count_ > 0) --pause_count_;
    if (pause_count_ > 0) return;  // other pausers still hold the shard
  }
  pause_cv_.notify_all();
}

void ServeShard::close() {
  // A chaos-killed dispatcher must come back before the queue seals: the
  // drain contract (every admitted ticket resolves before join returns)
  // needs a live dispatcher to flush the queue and the stashed orphans.
  revive_dispatcher();
  {
    const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (closed_) return;
    closed_ = true;
  }
  queue_.close();
  // Paused workers must wake to observe the close and drain — without
  // consuming anyone's pause: lifecycle overrides quiesce, it does not
  // unbalance it.
  {
    const std::lock_guard<std::mutex> lock(pause_mutex_);
    draining_ = true;
  }
  pause_cv_.notify_all();
  // Parked stage workers re-poll; they exit once the dispatcher (woken by
  // the queue close) has flushed its forming batches and the rings drain.
  work_signal_.notify();
}

void ServeShard::join() {
  close();
  {
    const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (joined_) return;
    joined_ = true;
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  for (std::thread& worker : workers_) worker.join();
}

void ServeShard::shutdown() { join(); }

bool ServeShard::chaos_kill_dispatcher() {
  if (!options_.pipeline) return false;
  {
    const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (closed_) return false;
    if (chaos_dispatcher_kill_.exchange(true, std::memory_order_acq_rel))
      return false;  // a kill is already in effect
  }
  // Wake a parked dispatcher so the kill lands now rather than at the next
  // arrival. (A dispatcher blocked pushing into a full extract ring sees it
  // once the workers free a slot — workers never park while work exists.)
  queue_.poke();
  return true;
}

bool ServeShard::revive_dispatcher() {
  if (!options_.pipeline) return false;
  std::thread dead;
  {
    const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (!chaos_dispatcher_kill_.load(std::memory_order_acquire)) return false;
    dead = std::move(dispatcher_);
  }
  // Join outside the lock: the dying dispatcher takes lifecycle_mutex_ to
  // stash its orphans, and this join may have to wait out a kill that is
  // still landing.
  if (dead.joinable()) dead.join();
  {
    const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    chaos_dispatcher_kill_.store(false, std::memory_order_release);
    dispatcher_dead_ = false;
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
  }
  return true;
}

void ServeShard::set_canary(std::shared_ptr<const retrain::CanaryAssignment> assignment) {
  const std::lock_guard<std::mutex> lock(canary_mutex_);
  canary_ = std::move(assignment);
  canary_counts_.clear();  // each rollout's round-robin starts from zero
}

void ServeShard::clear_canary(const std::string& machine) {
  const std::lock_guard<std::mutex> lock(canary_mutex_);
  if (canary_ != nullptr && canary_->machine == machine) {
    canary_ = nullptr;
    canary_counts_.clear();
  }
}

void ServeShard::register_probes(obs::StallWatchdog& watchdog) {
  const std::string prefix = "shard" + std::to_string(options_.shard_index) + "/";
  // Paused-but-not-draining is the one legitimate standstill with pending
  // work (operator pause, retrain quiesce); close() sets draining_, so a
  // draining shard is again expected to make progress.
  const auto suspended = [this] {
    const std::lock_guard<std::mutex> lock(pause_mutex_);
    return pause_count_ > 0 && !draining_;
  };
  const auto leash = std::chrono::duration_cast<obs::StallWatchdog::Clock::duration>(
      options_.telemetry.watchdog_stall_after);
  if (options_.pipeline) {
    // The dispatcher's pending work is the queue backlog plus requests it
    // already popped into forming (unsealed) windows — plus members a chaos
    // kill stashed, which are exactly the work a dead dispatcher strands.
    watchdog.add_probe(
        {prefix + "dispatcher", &dispatcher_beat_,
         [this] {
           return queue_.size() + forming_count_.load(std::memory_order_relaxed) +
                  orphaned_count_.load(std::memory_order_relaxed);
         },
         suspended, leash});
    static constexpr const char* kStageNames[kNumPipelineStages] = {"extract", "forward",
                                                                    "publish"};
    for (std::size_t stage = 0; stage < kNumPipelineStages; ++stage)
      watchdog.add_probe({prefix + kStageNames[stage], &stage_beats_[stage],
                          [this, stage] { return rings_[stage]->size_approx(); }, suspended,
                          leash});
  } else {
    watchdog.add_probe({prefix + "workers", &worker_beat_, [this] { return queue_.size(); },
                        suspended, leash});
  }
}

obs::SloTracker::Snapshot ServeShard::slo_snapshot(
    std::chrono::steady_clock::time_point now) const {
  return slo_ != nullptr ? slo_->evaluate(now) : obs::SloTracker::Snapshot{};
}

std::vector<obs::TraceEvent> ServeShard::exemplar_spans(const Pending& pending,
                                                        std::uint64_t id,
                                                        Clock::time_point now,
                                                        const PipelineBatch* batch) const {
  std::vector<obs::TraceEvent> spans;
  obs::TraceCollector& collector = obs::TraceCollector::instance();
  const auto shard_id = static_cast<std::uint32_t>(options_.shard_index);
  const auto push = [&](obs::Stage stage, Clock::time_point start, Clock::time_point end) {
    if (end < start) end = start;
    obs::TraceEvent event;
    event.request_id = id;
    event.stage = stage;
    event.shard = shard_id;
    event.start_ns = collector.to_ns(start);
    event.dur_ns = collector.to_ns(end) - event.start_ns;
    spans.push_back(event);
  };
  if (batch == nullptr) {
    // Never reached (or never left) a batch: the whole life was queue wait.
    push(obs::Stage::kAdmissionWait, pending.enqueued, now);
    return spans;
  }
  // Same partition the trace path records: scheduler phases, then the stage
  // compute spans with the inter-stage ring time broken out.
  const Clock::time_point popped =
      pending.popped != Clock::time_point{} ? pending.popped : batch->sealed;
  push(obs::Stage::kAdmissionWait, pending.enqueued, popped);
  push(obs::Stage::kLingerWait, popped, batch->sealed);
  push(obs::Stage::kDispatchWait, batch->sealed, batch->extract_start);
  push(batch->cache_hit ? obs::Stage::kCacheLookup : obs::Stage::kFeatureExtract,
       batch->extract_start, batch->cache_done);
  push(obs::Stage::kProfile, batch->cache_done, batch->profile_done);
  push(obs::Stage::kDispatchWait, batch->profile_done, batch->forward_start);
  push(obs::Stage::kForward, batch->forward_start, batch->forward_done);
  push(obs::Stage::kDispatchWait, batch->forward_done, now);
  return spans;
}

void ServeShard::record_outcome(const Pending& pending, double latency_us, bool error,
                                obs::Exemplar::Kind kind, Clock::time_point now,
                                const PipelineBatch* batch) {
  if (slo_ == nullptr) return;
  slo_->record(static_cast<std::size_t>(pending.tier), pending.request.route, latency_us,
               error, now);
  if (exemplars_ == nullptr) return;
  // Slow exemplars compete on latency; the relaxed pre-filter keeps the
  // publish hot path at one load per request once the reservoir warms up.
  // Deadline/error exemplars always enter their ring.
  if (kind == obs::Exemplar::Kind::kSlow && !exemplars_->would_admit(latency_us)) return;
  obs::Exemplar exemplar;
  // Exemplars need an identity even when full tracing is off (bucket ->
  // trace-id lookups, /exemplars exports). An untraced request gets one
  // minted here, for the exemplar only — its outcome still reports
  // trace_id 0, preserving the disabled-tracing contract.
  exemplar.trace_id = pending.request.trace.id != 0
                          ? pending.request.trace.id
                          : obs::TraceCollector::instance().next_request_id();
  exemplar.latency_us = latency_us;
  exemplar.shard = static_cast<std::uint32_t>(options_.shard_index);
  exemplar.tier = static_cast<std::size_t>(pending.tier);
  exemplar.route = pending.request.route;
  exemplar.kind = kind;
  exemplar.spans = exemplar_spans(pending, exemplar.trace_id, now, batch);
  exemplars_->offer(std::move(exemplar), now);
}

ServiceStatsSnapshot ServeShard::stats_snapshot() const {
  return stats_.snapshot(cache_.stats());
}

}  // namespace mga::serve
