// TuningService — batched, multi-threaded, QoS-aware tuning-as-a-service.
//
// Clients `submit` asynchronous TuneRequests (kernel spec + input size,
// optionally pre-collected counters, plus RequestOptions: priority tier,
// admission policy, deadline) and receive TuneTickets. A fixed worker pool
// consumes a three-lane TieredQueue (interactive > normal > bulk, with
// anti-starvation); each worker micro-batches by pulling every co-queued
// request for the same (machine, kernel) out of the backlog — and, when a
// linger window is configured, waits for same-kernel co-arrivals (clamped by
// the earliest deadline in the batch) — so one `MgaTuner::tune_group`
// forward amortizes the static GNN/DAE modalities across the batch. Expired
// and cancelled requests are swept out before feature extraction. The
// sharded FeatureCache memoizes the static features (and per-input profiling
// counters), so repeat traffic skips feature extraction and simulation
// entirely.
//
// Determinism contract: for a given trained tuner, a served prediction is
// bit-identical to calling `MgaTuner::tune` directly with the same (kernel,
// input size) — batching, caching, tiering and threading change throughput
// and completion order, never answers (asserted in tests/test_serve.cpp).
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/feature_cache.hpp"
#include "serve/model_registry.hpp"
#include "serve/queue.hpp"
#include "serve/stats.hpp"
#include "serve/ticket.hpp"

namespace mga::serve {

struct ServeOptions {
  std::size_t workers = 4;
  /// Per-tier lane capacity when the matching `tier_capacity` entry is 0.
  std::size_t queue_capacity = 1024;
  /// Lane capacity per tier (indexed by Priority); 0 = `queue_capacity`.
  std::array<std::size_t, kNumTiers> tier_capacity{};
  /// Max requests fused into one grouped forward.
  std::size_t max_batch = 32;
  /// Time-based micro-batch linger: after popping a request, wait up to this
  /// long for same-kernel co-arrivals before firing the grouped forward.
  /// Clamped by the earliest deadline in the batch; zero = drain-only (fire
  /// immediately); interactive-tier heads never linger.
  std::chrono::steady_clock::duration linger{};
  /// Consecutive pops a lower lane may be passed over before it is served
  /// regardless of priority (see TieredQueue).
  std::size_t starvation_limit = 8;
  FeatureCacheOptions cache;
  /// Registry entry used when a request names no machine. Empty = only
  /// legal when the registry holds exactly one entry.
  std::string default_machine;
};

struct TuneRequest {
  corpus::KernelSpec kernel;
  double input_bytes = 0.0;
  /// Pre-collected profiling counters; when absent the service profiles once
  /// (memoized per (kernel, input) in the feature cache).
  std::optional<hwsim::PapiCounters> counters;
  /// Registry entry to serve this request with; empty = the default.
  std::string machine;
  /// QoS: priority tier, admission policy, deadline.
  RequestOptions options;
};

class TuningService {
 public:
  explicit TuningService(std::shared_ptr<ModelRegistry> registry, ServeOptions options = {});
  ~TuningService();

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Enqueue a request under its RequestOptions and return the ticket.
  /// Never throws for service errors: admission refusals, unknown machines
  /// and shutdown all resolve the ticket with a ServeError. Admission::kBlock
  /// waits for lane room no longer than the request deadline (forever when
  /// none is set).
  [[nodiscard]] TuneTicket submit(TuneRequest request);

  /// Deprecated v1 shim over `submit`: identical to v2 with default
  /// RequestOptions, reporting errors by rethrowing `ServeError::cause`
  /// (the legacy exception types) from the future. New code should use
  /// `submit` and branch on the TuneOutcome.
  [[nodiscard]] std::future<TuneResult> submit_future(TuneRequest request);

  /// Convenience: submit everything, wait, and return results in order.
  /// Error outcomes surface as exceptions (first failing request wins), so
  /// this is only suitable for workloads without deadlines or cancellation.
  [[nodiscard]] std::vector<TuneResult> tune_all(std::vector<TuneRequest> requests);

  /// Pause the worker pool: workers finish the batches they already claimed
  /// and then idle; submissions keep queueing (and admission policies keep
  /// applying). `resume` (or `shutdown`) releases them. Lets operators
  /// quiesce the pool around registry hot-swaps — and tests stage queue
  /// states deterministically.
  void pause();
  void resume();

  /// Close the queue, drain the backlog, join the workers. Idempotent;
  /// the destructor calls it.
  void shutdown();

  [[nodiscard]] ServiceStatsSnapshot stats_snapshot() const;

  [[nodiscard]] const ServeOptions& options() const noexcept { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    TuneRequest request;  // request.machine resolved at submit
    std::shared_ptr<TicketState> state;
    std::uint64_t group_key = 0;
    Priority tier = Priority::kNormal;
    Clock::time_point enqueued;
    Clock::time_point deadline_at;  // time_point::max() when no deadline
  };

  void worker_loop();
  /// Resolve `pending` when it is cancelled or past its deadline, recording
  /// the per-tier counter. True when the request was dropped.
  bool sweep(Pending& pending, Clock::time_point now);
  /// Wait for same-kernel co-arrivals until the linger window (or the
  /// earliest batch deadline) closes or the batch fills.
  template <typename Match>
  void linger_batch(std::vector<Pending>& batch, const Match& match,
                    Clock::time_point pop_time);
  void process_batch(std::vector<Pending>& batch);
  /// Target machine for `request`, or a resolution ServeError.
  [[nodiscard]] std::optional<ServeError> resolve_machine(TuneRequest& request) const;

  std::shared_ptr<ModelRegistry> registry_;
  ServeOptions options_;
  FeatureCache cache_;
  ServiceStats stats_;
  TieredQueue<Pending> queue_;
  std::vector<std::thread> workers_;
  std::mutex pause_mutex_;
  std::condition_variable pause_cv_;
  bool paused_ = false;
  std::mutex shutdown_mutex_;
  bool shut_down_ = false;
};

}  // namespace mga::serve
