// TuningService — batched, multi-threaded tuning-as-a-service.
//
// Clients `submit` asynchronous TuneRequests (kernel spec + input size,
// optionally pre-collected counters) and receive futures. A fixed worker
// pool consumes a bounded MPMC queue; each worker micro-batches by pulling
// every co-queued request for the same (machine, kernel) out of the backlog
// so one `MgaTuner::tune_group` forward amortizes the static GNN/DAE
// modalities across the batch. The sharded FeatureCache memoizes the static
// features (and per-input profiling counters), so repeat traffic skips
// feature extraction and simulation entirely.
//
// Determinism contract: for a given trained tuner, a served prediction is
// bit-identical to calling `MgaTuner::tune` directly with the same (kernel,
// input size) — batching, caching and threading change throughput, never
// answers (asserted in tests/test_serve.cpp).
#pragma once

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/feature_cache.hpp"
#include "serve/model_registry.hpp"
#include "serve/queue.hpp"
#include "serve/stats.hpp"

namespace mga::serve {

struct ServeOptions {
  std::size_t workers = 4;
  std::size_t queue_capacity = 1024;
  /// Max requests fused into one grouped forward.
  std::size_t max_batch = 32;
  FeatureCacheOptions cache;
  /// Registry entry used when a request names no machine. Empty = only
  /// legal when the registry holds exactly one entry.
  std::string default_machine;
};

struct TuneRequest {
  corpus::KernelSpec kernel;
  double input_bytes = 0.0;
  /// Pre-collected profiling counters; when absent the service profiles once
  /// (memoized per (kernel, input) in the feature cache).
  std::optional<hwsim::PapiCounters> counters;
  /// Registry entry to serve this request with; empty = the default.
  std::string machine;
};

struct TuneResult {
  hwsim::OmpConfig config;
  bool cache_hit = false;        // static features came from the cache
  std::size_t batch_size = 1;    // size of the grouped forward that served it
  double latency_us = 0.0;       // submit -> completion
};

class TuningService {
 public:
  explicit TuningService(std::shared_ptr<ModelRegistry> registry, ServeOptions options = {});
  ~TuningService();

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Enqueue a request. Blocks while the queue is at capacity
  /// (backpressure). The future reports service errors (unknown machine,
  /// failed artifact load) as exceptions.
  [[nodiscard]] std::future<TuneResult> submit(TuneRequest request);

  /// Convenience: submit everything, wait, and return results in order.
  [[nodiscard]] std::vector<TuneResult> tune_all(std::vector<TuneRequest> requests);

  /// Close the queue, drain the backlog, join the workers. Idempotent;
  /// the destructor calls it.
  void shutdown();

  [[nodiscard]] ServiceStatsSnapshot stats_snapshot() const;

  [[nodiscard]] const ServeOptions& options() const noexcept { return options_; }

 private:
  struct Pending {
    TuneRequest request;  // request.machine resolved at submit
    std::promise<TuneResult> promise;
    std::uint64_t group_key = 0;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();
  void process_batch(std::vector<Pending>& batch);
  [[nodiscard]] std::string resolve_machine(const TuneRequest& request) const;

  std::shared_ptr<ModelRegistry> registry_;
  ServeOptions options_;
  FeatureCache cache_;
  ServiceStats stats_;
  BoundedQueue<Pending> queue_;
  std::vector<std::thread> workers_;
  std::mutex shutdown_mutex_;
  bool shut_down_ = false;
};

}  // namespace mga::serve
