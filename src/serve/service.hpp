// TuningService — the facade layer of the serve stack: batched,
// multi-threaded, QoS-aware, *sharded* tuning-as-a-service.
//
// The stack is three layers (see DESIGN.md §6–§7):
//
//   facade  TuningService   public v2 API (submit/tickets/outcomes, QoS),
//                           machine resolution, stats aggregation
//   router  ShardRouter     consistent-hash ring over (machine, kernel
//                           fingerprint) with virtual nodes
//   engine  ServeShard      TieredQueue + worker pool + FeatureCache +
//                           ServiceStats + linger/sweep/batch logic
//
// Clients `submit` asynchronous TuneRequests (kernel spec + input size,
// optionally pre-collected counters, plus RequestOptions: priority tier,
// admission policy, deadline) and receive TuneTickets. The facade resolves
// the target machine and routes the request onto one of
// `ServeOptions::shards` engines; the ring pins every (machine, kernel) to
// one shard, so repeat traffic always lands where the feature cache already
// holds its features. `shards = 1` (the default) is byte-for-byte the
// unsharded service.
//
// Determinism contract: for a given trained tuner, a served prediction is
// bit-identical to calling `MgaTuner::tune` directly with the same (kernel,
// input size) — batching, caching, tiering, sharding and threading change
// throughput and completion order, never answers (asserted in
// tests/test_serve.cpp, for every shard count the bench runs).
#pragma once

#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/server.hpp"
#include "serve/load/trace.hpp"
#include "serve/retrain/controller.hpp"
#include "serve/router.hpp"
#include "serve/shard.hpp"

namespace mga::serve {

class TuningService {
 public:
  explicit TuningService(std::shared_ptr<ModelRegistry> registry, ServeOptions options = {});
  ~TuningService();

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Enqueue a request under its RequestOptions and return the ticket.
  /// Never throws for service errors: admission refusals, unknown machines
  /// and shutdown all resolve the ticket with a ServeError. Admission::kBlock
  /// waits for lane room no longer than the request deadline (forever when
  /// none is set).
  [[nodiscard]] TuneTicket submit(TuneRequest request);

  /// Deprecated v1 shim over `submit`: identical to v2 with default
  /// RequestOptions, reporting errors by rethrowing `ServeError::cause`
  /// (the legacy exception types) from the future. New code should use
  /// `submit` and branch on the TuneOutcome.
  [[nodiscard]] std::future<TuneResult> submit_future(TuneRequest request);

  /// Convenience: submit everything, wait, and return results in order.
  /// Error outcomes surface as exceptions (first failing request wins), so
  /// this is only suitable for workloads without deadlines or cancellation.
  [[nodiscard]] std::vector<TuneResult> tune_all(std::vector<TuneRequest> requests);

  /// Pause every shard's worker pool: workers finish the batches they
  /// already claimed and then idle; submissions keep queueing (and admission
  /// policies keep applying). `resume` (or `shutdown`) releases them. Lets
  /// operators quiesce the pool around registry hot-swaps — and tests stage
  /// queue states deterministically.
  void pause();
  void resume();

  /// Close every shard's queue (so all shards drain their backlogs
  /// concurrently), then join all workers. Idempotent; the destructor
  /// calls it.
  void shutdown();

  /// Aggregate view over all shards (counters summed, percentiles over the
  /// pooled sample windows) with the per-shard breakdown attached as
  /// `ServiceStatsSnapshot::shards`.
  [[nodiscard]] ServiceStatsSnapshot stats_snapshot() const;

  [[nodiscard]] const ServeOptions& options() const noexcept { return options_; }

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

  /// The shard a (machine, kernel) routes to — the quiesce blast radius of a
  /// hot swap affecting that route (pure ring lookup, no shard touched).
  [[nodiscard]] std::size_t shard_index_for(const std::string& machine,
                                            const corpus::KernelSpec& kernel) const {
    return router_.shard_for(route_key(machine, route_fingerprint(kernel)));
  }

  /// The submit-path trace recorder, when `ServeOptions::record_trace` was
  /// set; null otherwise. Snapshot it (and `load::save_trace` the result)
  /// to capture the current arrival window for incident replay.
  [[nodiscard]] load::TraceRecorder* trace_recorder() noexcept { return recorder_.get(); }

  // ---- chaos seams (bench/test only — DESIGN.md §13) --------------------

  /// Kill / revive shard `index`'s dispatcher (see
  /// ServeShard::chaos_kill_dispatcher). False for out-of-range indices or
  /// when the shard refuses (legacy engine, closed, kill already pending).
  bool chaos_kill_dispatcher(std::size_t index);
  bool revive_shard(std::size_t index);

  /// Direct shard access for scenario tooling (governor state, shard-level
  /// probes). Index must be < shard_count().
  [[nodiscard]] const ServeShard& shard(std::size_t index) const { return *shards_[index]; }

  /// The online-retraining loop, when `ServeOptions::retrain.enabled` was
  /// set; null otherwise. Owned by the service: it is stopped before the
  /// shards drain on shutdown.
  [[nodiscard]] retrain::RetrainController* retrain() noexcept { return retrain_.get(); }
  [[nodiscard]] const retrain::RetrainController* retrain() const noexcept {
    return retrain_.get();
  }

  // ---- telemetry plane (DESIGN.md §12) ----------------------------------

  /// Combined health verdict: worst of the aggregated SLO windows and the
  /// stall watchdog. Always kOk when telemetry is disabled.
  [[nodiscard]] obs::HealthState health() const;
  /// Service-wide SLO verdict (exact cross-shard aggregation) and the
  /// per-shard verdicts it was built from.
  [[nodiscard]] obs::SloTracker::Snapshot slo_snapshot() const;
  [[nodiscard]] std::vector<obs::SloTracker::Snapshot> shard_slo_snapshots() const;
  /// Current exemplars across every shard's reservoir (slowest first per
  /// shard). Empty when telemetry is disabled.
  [[nodiscard]] std::vector<obs::Exemplar> exemplar_snapshot() const;
  /// The stall watchdog, null when telemetry is disabled.
  [[nodiscard]] obs::StallWatchdog* watchdog() noexcept { return watchdog_.get(); }
  [[nodiscard]] const obs::StallWatchdog* watchdog() const noexcept { return watchdog_.get(); }
  /// One full Prometheus scrape: serve counters (per shard / per tier), SLO
  /// and watchdog verdicts, plus the process-global registry (runtime-plan
  /// counters) appended.
  [[nodiscard]] std::string metrics_prometheus() const;
  /// Seconds since construction.
  [[nodiscard]] double uptime_seconds() const;
  /// The bound introspection port; 0 unless `telemetry.http` was set (use
  /// with `TelemetryOptions::http_port = 0` for an ephemeral port).
  [[nodiscard]] std::uint16_t telemetry_port() const noexcept {
    return server_ ? server_->port() : 0;
  }

 private:
  /// Target machine for `request`, or a resolution ServeError.
  [[nodiscard]] std::optional<ServeError> resolve_machine(TuneRequest& request) const;
  /// The shard `request` routes to (machine must be final).
  [[nodiscard]] ServeShard& shard_for(const TuneRequest& request);

  std::shared_ptr<ModelRegistry> registry_;
  ServeOptions options_;
  ShardRouter router_;
  /// Tenant name → policy index under the normalized TenantPolicy (the ctor
  /// guarantees a "default" entry). Empty when multi-tenancy is off.
  std::unordered_map<std::string, std::uint32_t> tenant_index_;
  std::uint32_t default_tenant_ = 0;
  /// Submit-path arrival recorder; null unless options.record_trace.
  std::unique_ptr<load::TraceRecorder> recorder_;
  /// Declared before `shards_`: the controller's hooks reach shards through
  /// `this`, and shutdown stops it before any shard joins.
  std::unique_ptr<retrain::RetrainController> retrain_;
  std::vector<std::unique_ptr<ServeShard>> shards_;
  /// Declared after `shards_` (and stopped first in shutdown): the probe
  /// lambdas and endpoint handlers read shard / controller state, so both
  /// must be quiet before any of it is torn down.
  std::unique_ptr<obs::StallWatchdog> watchdog_;
  std::unique_ptr<obs::ObsServer> server_;
  std::chrono::steady_clock::time_point started_{};
  std::mutex shutdown_mutex_;
  bool shut_down_ = false;
};

}  // namespace mga::serve
