// Bounded MPMC queues — the request spine of the tuning service.
//
// `BoundedQueue` is the single-lane primitive: blocking `push` gives natural
// backpressure (submitters stall instead of growing an unbounded backlog),
// `push_until` bounds that stall by a deadline, and `drain_matching` pulls
// co-queued same-kernel requests out of FIFO order for micro-batching while
// leaving everything else in place.
//
// `TieredQueue` is the QoS spine of the serve engine layer: N priority lanes
// (lane 0 highest) with per-lane capacity and admission primitives
// (`try_push` to reject, `push_shedding` to displace the lane's oldest,
// `push_until` for deadline-bounded blocking). `pop` serves the
// highest-priority non-empty lane, except that a lower lane passed over
// `starvation_limit` times in a row is served next — bulk traffic makes
// progress under an interactive flood. A push epoch plus `wait_push` lets
// the worker's linger window sleep until a new arrival might extend its
// batch.
//
// Under sharded serving every `ServeShard` owns a private TieredQueue, so
// all semantics here — capacity, backpressure, starvation accounting, and
// in particular `close` (seal, drain, wake waiters) — are shard-local: one
// shard closing or backing up never stalls another shard's lanes. The
// facade closes all shard queues before joining any workers, so backlogs
// drain concurrently.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "obs/probe.hpp"
#include "util/check.hpp"

namespace mga::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    MGA_CHECK_MSG(capacity > 0, "BoundedQueue: capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Block until there is room (or the queue closes). Returns false — and
  /// drops the item — when the queue is closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Like `push`, but waits no longer than `deadline`; false when the
  /// deadline passes while the queue is still full (or the queue closes).
  bool push_until(T item, std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_full_.wait_until(lock, deadline,
                              [&] { return closed_ || items_.size() < capacity_; }))
      return false;
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available (or the queue closes and drains).
  /// Returns nullopt only when closed and empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when nothing is queued.
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Extract up to `max` queued items satisfying `pred` (from anywhere in the
  /// queue, preserving their relative order and the order of what remains),
  /// appending them to `out`. Returns the number extracted. Never blocks.
  template <typename Pred>
  std::size_t drain_matching(Pred&& pred, std::size_t max, std::vector<T>& out) {
    std::size_t extracted = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (auto it = items_.begin(); it != items_.end() && extracted < max;) {
        if (pred(*it)) {
          out.push_back(std::move(*it));
          it = items_.erase(it);
          ++extracted;
        } else {
          ++it;
        }
      }
    }
    if (extracted > 0) not_full_.notify_all();
    return extracted;
  }

  /// Close the queue: pending pops drain the backlog then return nullopt;
  /// subsequent pushes fail.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

template <typename T>
class TieredQueue {
 public:
  enum class PushResult { kOk, kFull, kClosed };

  /// `capacities[i]` bounds lane i (lane 0 = highest priority); all must be
  /// positive. A lane passed over `starvation_limit` consecutive pops while
  /// non-empty is served next regardless of priority.
  TieredQueue(std::vector<std::size_t> capacities, std::size_t starvation_limit = 8)
      : starvation_limit_(starvation_limit) {
    MGA_CHECK_MSG(!capacities.empty(), "TieredQueue: need at least one lane");
    MGA_CHECK_MSG(starvation_limit > 0, "TieredQueue: starvation_limit must be positive");
    lanes_.resize(capacities.size());
    for (std::size_t i = 0; i < capacities.size(); ++i) {
      MGA_CHECK_MSG(capacities[i] > 0, "TieredQueue: lane capacity must be positive");
      lanes_[i].capacity = capacities[i];
    }
  }

  TieredQueue(const TieredQueue&) = delete;
  TieredQueue& operator=(const TieredQueue&) = delete;

  /// Block until lane `lane` has room (or the queue closes).
  PushResult push(T item, std::size_t lane) {
    std::unique_lock<std::mutex> lock = mutex_.lock_unique();
    Lane& target = lanes_.at(lane);
    not_full_.wait(lock, [&] { return closed_ || target.items.size() < target.capacity; });
    if (closed_) return PushResult::kClosed;
    return admit(std::move(item), target, lock);
  }

  /// Like `push`, but waits no longer than `deadline`.
  PushResult push_until(T item, std::size_t lane,
                        std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock = mutex_.lock_unique();
    Lane& target = lanes_.at(lane);
    if (!not_full_.wait_until(lock, deadline, [&] {
          return closed_ || target.items.size() < target.capacity;
        }))
      return PushResult::kFull;
    if (closed_) return PushResult::kClosed;
    return admit(std::move(item), target, lock);
  }

  /// Non-blocking push; kFull when the lane is at capacity.
  PushResult try_push(T item, std::size_t lane) {
    std::unique_lock<std::mutex> lock = mutex_.lock_unique();
    Lane& target = lanes_.at(lane);
    if (closed_) return PushResult::kClosed;
    if (target.items.size() >= target.capacity) return PushResult::kFull;
    return admit(std::move(item), target, lock);
  }

  /// Shed admission: when the lane is full, displace its oldest item into
  /// `*shed` to make room. Never blocks; always admits unless closed.
  PushResult push_shedding(T item, std::size_t lane, std::optional<T>& shed) {
    std::unique_lock<std::mutex> lock = mutex_.lock_unique();
    Lane& target = lanes_.at(lane);
    if (closed_) return PushResult::kClosed;
    if (target.items.size() >= target.capacity) {
      shed.emplace(std::move(target.items.front()));
      target.items.pop_front();
      --total_;
    }
    return admit(std::move(item), target, lock);
  }

  /// Block until an item is available (or the queue closes and drains).
  /// Serves the highest-priority non-empty lane subject to the starvation
  /// override. Returns nullopt only when closed and empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock = mutex_.lock_unique();
    not_empty_.wait(lock, [&] { return closed_ || total_ > 0; });
    return pop_locked(lock);
  }

  /// Non-blocking pop; nullopt when every lane is empty.
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock = mutex_.lock_unique();
    return pop_locked(lock);
  }

  /// Extract up to `max` queued items satisfying `pred` — scanning lanes in
  /// priority order, preserving relative order within each lane — appending
  /// them to `out`. Returns the number extracted. Never blocks.
  template <typename Pred>
  std::size_t drain_matching(Pred&& pred, std::size_t max, std::vector<T>& out) {
    std::size_t extracted = 0;
    {
      const std::unique_lock<std::mutex> lock = mutex_.lock_unique();
      for (Lane& lane : lanes_) {
        for (auto it = lane.items.begin(); it != lane.items.end() && extracted < max;) {
          if (pred(*it)) {
            out.push_back(std::move(*it));
            it = lane.items.erase(it);
            ++extracted;
          } else {
            ++it;
          }
        }
        if (extracted >= max) break;
      }
      total_ -= extracted;
    }
    if (extracted > 0) not_full_.notify_all();
    return extracted;
  }

  /// Monotone counter bumped by every successful push. With `wait_push`
  /// this is the linger primitive: sample the epoch, drain, then sleep
  /// until a newer push (which might be batchable) or the deadline.
  [[nodiscard]] std::uint64_t push_epoch() const {
    const std::unique_lock<std::mutex> lock = mutex_.lock_unique();
    return epoch_;
  }

  /// Wait until a push lands after `seen_epoch`, the queue closes, or
  /// `deadline` passes. True exactly when a newer push was observed.
  [[nodiscard]] bool wait_push(std::uint64_t seen_epoch,
                               std::chrono::steady_clock::time_point deadline) const {
    std::unique_lock<std::mutex> lock = mutex_.lock_unique();
    not_empty_.wait_until(lock, deadline, [&] { return closed_ || epoch_ > seen_epoch; });
    return epoch_ > seen_epoch;
  }

  /// Block until some lane is non-empty or the queue closes.
  void wait_nonempty() const {
    std::unique_lock<std::mutex> lock = mutex_.lock_unique();
    not_empty_.wait(lock, [&] { return closed_ || total_ > 0; });
  }

  /// Wake `wait_push` / `wait_nonempty` waiters without enqueueing anything:
  /// the epoch bump makes a parked consumer re-drain (it finds nothing new)
  /// and re-check its exit conditions. Used by the chaos seams to deliver a
  /// kill/revive signal to an idle dispatcher that would otherwise sleep
  /// until the next real push.
  void poke() {
    {
      const std::unique_lock<std::mutex> lock = mutex_.lock_unique();
      ++epoch_;
    }
    not_empty_.notify_all();
  }

  /// Close the queue: pending pops drain the backlog then return nullopt;
  /// subsequent pushes fail with kClosed.
  void close() {
    {
      const std::unique_lock<std::mutex> lock = mutex_.lock_unique();
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::unique_lock<std::mutex> lock = mutex_.lock_unique();
    return total_;
  }

  [[nodiscard]] std::size_t size(std::size_t lane) const {
    const std::unique_lock<std::mutex> lock = mutex_.lock_unique();
    return lanes_.at(lane).items.size();
  }

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_.size(); }

  [[nodiscard]] std::size_t capacity(std::size_t lane) const { return lanes_.at(lane).capacity; }

  [[nodiscard]] bool closed() const {
    const std::unique_lock<std::mutex> lock = mutex_.lock_unique();
    return closed_;
  }

 private:
  struct Lane {
    std::deque<T> items;
    std::size_t capacity = 0;
    /// Consecutive pops that served another lane while this one waited.
    std::size_t passed_over = 0;
  };

  /// Enqueue into `target` (room must exist), bump the epoch, notify.
  PushResult admit(T item, Lane& target, std::unique_lock<std::mutex>& lock) {
    target.items.push_back(std::move(item));
    ++total_;
    ++epoch_;
    lock.unlock();
    not_empty_.notify_all();  // all: pop waiters and linger waiters share the cv
    return PushResult::kOk;
  }

  std::optional<T> pop_locked(std::unique_lock<std::mutex>& lock) {
    if (total_ == 0) return std::nullopt;
    // Highest-priority non-empty lane, unless a starved lower lane (scanned
    // lowest-priority first: the longest-ignored traffic) takes the slot.
    std::size_t pick = 0;
    while (lanes_[pick].items.empty()) ++pick;
    for (std::size_t i = lanes_.size(); i-- > pick + 1;) {
      if (!lanes_[i].items.empty() && lanes_[i].passed_over >= starvation_limit_) {
        pick = i;
        break;
      }
    }
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      if (i == pick)
        lanes_[i].passed_over = 0;
      else if (!lanes_[i].items.empty())
        ++lanes_[i].passed_over;
    }
    T item = std::move(lanes_[pick].items.front());
    lanes_[pick].items.pop_front();
    --total_;
    lock.unlock();
    not_full_.notify_all();
    return item;
  }

  // Probed so the shard's dominant lock shows up in obs::contention_table();
  // condition variables wait on the native mutex via lock_unique(), so the
  // initial acquisition is timed and wait-side re-acquisitions are not.
  mutable obs::ProbedMutex mutex_{"shard.tiered_queue"};
  std::condition_variable not_full_;
  mutable std::condition_variable not_empty_;
  std::vector<Lane> lanes_;
  std::size_t total_ = 0;
  std::uint64_t epoch_ = 0;
  std::size_t starvation_limit_;
  bool closed_ = false;
};

}  // namespace mga::serve
