// Bounded multi-producer / multi-consumer queue — the request spine of the
// tuning service.
//
// Blocking `push` gives the service natural backpressure (submitters stall
// instead of growing an unbounded backlog); `drain_matching` is the hook the
// micro-batching scheduler uses to pull co-queued requests for the same
// kernel out of FIFO order while leaving everything else in place.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace mga::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    MGA_CHECK_MSG(capacity > 0, "BoundedQueue: capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Block until there is room (or the queue closes). Returns false — and
  /// drops the item — when the queue is closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available (or the queue closes and drains).
  /// Returns nullopt only when closed and empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when nothing is queued.
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Extract up to `max` queued items satisfying `pred` (from anywhere in the
  /// queue, preserving their relative order and the order of what remains),
  /// appending them to `out`. Returns the number extracted. Never blocks.
  template <typename Pred>
  std::size_t drain_matching(Pred&& pred, std::size_t max, std::vector<T>& out) {
    std::size_t extracted = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (auto it = items_.begin(); it != items_.end() && extracted < max;) {
        if (pred(*it)) {
          out.push_back(std::move(*it));
          it = items_.erase(it);
          ++extracted;
        } else {
          ++it;
        }
      }
    }
    if (extracted > 0) not_full_.notify_all();
    return extracted;
  }

  /// Close the queue: pending pops drain the backlog then return nullopt;
  /// subsequent pushes fail.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace mga::serve
