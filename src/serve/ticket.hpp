// QoS request surface of the serve v2 API.
//
// A `TuneRequest` carries `RequestOptions` — priority tier, admission policy
// for a full lane, and an optional deadline — and `TuningService::submit`
// returns a `TuneTicket`: a handle over the request's shared state with
// `get` / `wait_for` / `cancel` / `done`. Results are a typed `TuneOutcome`
// (expected-style: a `TuneResult` value or a `ServeError`) instead of opaque
// exceptions; the error taxonomy is closed (`ServeErrorKind`) so callers can
// branch on it, and `ServeError::cause` preserves the original exception for
// the deprecated future-based shims to rethrow.
//
// Resolution discipline: a ticket's state resolves exactly once — the first
// of {worker completion, cancel, deadline/cancellation sweep, admission
// rejection} wins and every later attempt is a no-op. That single rule makes
// `cancel` racing a draining worker safe: the caller observes either the
// served value or a `kCancelled` error, never both, never neither.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "hwsim/workload.hpp"
#include "util/check.hpp"

namespace mga::serve {

/// Admission tiers, highest priority first. The tiered queue pops
/// interactive traffic ahead of normal ahead of bulk (with an
/// anti-starvation override, see TieredQueue).
enum class Priority : std::uint8_t { kInteractive = 0, kNormal = 1, kBulk = 2 };

inline constexpr std::size_t kNumTiers = 3;

[[nodiscard]] constexpr const char* to_string(Priority priority) noexcept {
  switch (priority) {
    case Priority::kInteractive: return "interactive";
    case Priority::kNormal: return "normal";
    case Priority::kBulk: return "bulk";
  }
  return "?";
}

/// What `submit` does when the request's tier lane is at capacity.
enum class Admission : std::uint8_t {
  kBlock,   ///< Wait for room (bounded by the request deadline, if any).
  kReject,  ///< Resolve the ticket immediately with kRejected.
  kShed,    ///< Displace the oldest request in the lane (which gets
            ///< kRejected) and admit this one.
};

struct RequestOptions {
  Priority priority = Priority::kNormal;
  Admission admission = Admission::kBlock;
  /// Relative deadline, measured from submit; zero = none. Enforced at the
  /// admission gate (Block waits no longer than this) and at the worker
  /// sweeps before a grouped forward; a request whose compute already
  /// started is delivered even if it finishes past the deadline.
  std::chrono::steady_clock::duration deadline{};
  /// Tenant this request is billed to under a TenantPolicy (quota + weighted
  /// fair admission — DESIGN.md §13). Empty or unknown names land on the
  /// implicit "default" tenant; ignored entirely when the service has no
  /// tenant policy.
  std::string tenant;
};

enum class ServeErrorKind : std::uint8_t {
  kRejected,          ///< Admission: lane full (kReject), displaced (kShed),
                      ///< or submit after shutdown.
  kDeadlineExceeded,  ///< Deadline elapsed while queued or blocked.
  kCancelled,         ///< TuneTicket::cancel won the resolution race.
  kUnknownMachine,    ///< No such registry entry / no default configured.
  kLoadFailed,        ///< Registry artifact load (or the forward) threw.
};

[[nodiscard]] constexpr const char* to_string(ServeErrorKind kind) noexcept {
  switch (kind) {
    case ServeErrorKind::kRejected: return "rejected";
    case ServeErrorKind::kDeadlineExceeded: return "deadline-exceeded";
    case ServeErrorKind::kCancelled: return "cancelled";
    case ServeErrorKind::kUnknownMachine: return "unknown-machine";
    case ServeErrorKind::kLoadFailed: return "load-failed";
  }
  return "?";
}

struct ServeError {
  ServeErrorKind kind = ServeErrorKind::kRejected;
  std::string detail;
  /// The original exception when this error wraps one (registry load
  /// failures, legacy resolve errors); the deprecated future shims rethrow
  /// it so v1 callers keep seeing the exact exception types they did.
  std::exception_ptr cause;
};

struct TuneResult {
  hwsim::OmpConfig config;
  bool cache_hit = false;      // static features came from the cache
  std::size_t batch_size = 1;  // size of the grouped forward that served it
  /// ModelRegistry generation of the tuner that served this request. A batch
  /// resolves the registry exactly once, so every member of a grouped
  /// forward reports the same generation — during a hot swap a result is
  /// consistently old-model or consistently new-model, never torn.
  /// Generation numbers are never reused (discarded canary candidates burn
  /// theirs), so this identifies exactly one model.
  std::uint64_t model_generation = 0;
  /// True when a provisionally staged canary candidate served this request
  /// (`model_generation` is then its provisional generation). A request
  /// assigned to a canary that was promoted or rolled back before its batch
  /// fired reports the model that actually served it: the promoted model
  /// (canary = false, same generation) or the incumbent after a rollback.
  bool canary = false;
  double latency_us = 0.0;     // submit -> outcome resolved
  /// Breakdown of latency_us: time spent queued (admission + lane + linger,
  /// submit -> batch fire) vs. in the batch itself (registry resolve,
  /// features, profiling, grouped forward).
  double queue_wait_us = 0.0;
  double compute_us = 0.0;
  /// Request-tracing id stamped by the facade when obs is enabled (0 =
  /// untraced); matches the `request_id` arg of this request's spans in an
  /// exported Chrome trace.
  std::uint64_t trace_id = 0;
};

/// Expected-style result of a served request: a value or a ServeError.
class TuneOutcome {
 public:
  /*implicit*/ TuneOutcome(TuneResult value) : state_(std::move(value)) {}
  /*implicit*/ TuneOutcome(ServeError error) : state_(std::move(error)) {}

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<TuneResult>(state_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const TuneResult& value() const {
    MGA_CHECK_MSG(ok(), "TuneOutcome::value() on an error outcome");
    return std::get<TuneResult>(state_);
  }
  [[nodiscard]] TuneResult& value() {
    MGA_CHECK_MSG(ok(), "TuneOutcome::value() on an error outcome");
    return std::get<TuneResult>(state_);
  }
  [[nodiscard]] const ServeError& error() const {
    MGA_CHECK_MSG(!ok(), "TuneOutcome::error() on a value outcome");
    return std::get<ServeError>(state_);
  }

 private:
  std::variant<TuneResult, ServeError> state_;
};

/// Shared state behind a TuneTicket: resolve-once outcome cell plus the
/// cancellation flag the worker sweeps read. Internal to the service; public
/// only because TuneTicket and TuningService both hold it.
class TicketState {
 public:
  /// First resolve wins; later calls are no-ops. Returns whether this call
  /// was the one that resolved the ticket.
  bool resolve(TuneOutcome outcome) {
    if (!try_claim()) return false;
    publish(std::move(outcome));
    return true;
  }

  /// Two-phase resolution for resolvers that must do accounting before the
  /// outcome becomes visible (a `get`ter may read a stats snapshot the
  /// instant it wakes): winner of `try_claim` records its counters, then
  /// `publish`es. Only the claim winner may publish, exactly once.
  [[nodiscard]] bool try_claim() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (claimed_) return false;
    claimed_ = true;
    return true;
  }

  void publish(TuneOutcome outcome) {
    std::function<void()> cleanup;
    std::function<void(const TuneOutcome&)> continuation;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      outcome_.emplace(outcome);
      cleanup = std::move(cleanup_);
      cleanup_ = nullptr;
      continuation = std::move(continuation_);
      continuation_ = nullptr;
    }
    cv_.notify_all();
    if (cleanup) cleanup();
    if (continuation) continuation(outcome);
  }

  /// Service-side accounting hook, run exactly once inside `publish` after
  /// the outcome is stored (before any caller continuation). The admission
  /// layer uses it to return per-tenant in-flight charges whichever path
  /// resolves the ticket — worker, sweep, shed, cancel, or the submit call
  /// itself. Must be set before the state is shared with any resolver (the
  /// shard sets it pre-enqueue, on the submitting thread); separate from
  /// `on_resolved` so the caller's continuation slot stays free.
  void set_cleanup(std::function<void()> cleanup) {
    const std::lock_guard<std::mutex> lock(mutex_);
    cleanup_ = std::move(cleanup);
  }

  /// Register a callback run exactly once with the outcome — inline on the
  /// resolving thread, or immediately when already resolved. At most one
  /// continuation per ticket; keep it cheap and non-throwing (the future
  /// shim uses it to keep v1's promise-backed readiness semantics).
  void on_resolved(std::function<void(const TuneOutcome&)> continuation) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (outcome_.has_value()) {
      const TuneOutcome outcome = *outcome_;
      lock.unlock();
      continuation(outcome);
      return;
    }
    continuation_ = std::move(continuation);
  }

  [[nodiscard]] bool done() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return outcome_.has_value();
  }

  [[nodiscard]] TuneOutcome get() const {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return outcome_.has_value(); });
    return *outcome_;
  }

  [[nodiscard]] bool wait_for(std::chrono::steady_clock::duration timeout) const {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, timeout, [&] { return outcome_.has_value(); });
  }

  /// Cancellation is advisory until a sweep or the resolve race observes it.
  void request_cancel() noexcept { cancel_requested_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancel_requested_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  bool claimed_ = false;
  std::optional<TuneOutcome> outcome_;
  std::function<void()> cleanup_;
  std::function<void(const TuneOutcome&)> continuation_;
  std::atomic<bool> cancel_requested_{false};
};

/// Caller-side handle for a submitted request. Copyable (all copies share
/// the same state); a default-constructed ticket is invalid.
class TuneTicket {
 public:
  TuneTicket() = default;
  explicit TuneTicket(std::shared_ptr<TicketState> state) : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Block until the request resolves; safe to call repeatedly.
  [[nodiscard]] TuneOutcome get() const {
    MGA_CHECK_MSG(valid(), "TuneTicket::get() on an invalid ticket");
    return state_->get();
  }

  /// True when the outcome is available within `timeout`.
  [[nodiscard]] bool wait_for(std::chrono::steady_clock::duration timeout) const {
    MGA_CHECK_MSG(valid(), "TuneTicket::wait_for() on an invalid ticket");
    return state_->wait_for(timeout);
  }

  [[nodiscard]] bool done() const {
    MGA_CHECK_MSG(valid(), "TuneTicket::done() on an invalid ticket");
    return state_->done();
  }

  /// Register a one-shot completion callback (see TicketState::on_resolved:
  /// runs inline on the resolving thread, or immediately when already done).
  void on_resolved(std::function<void(const TuneOutcome&)> continuation) const {
    MGA_CHECK_MSG(valid(), "TuneTicket::on_resolved() on an invalid ticket");
    state_->on_resolved(std::move(continuation));
  }

  /// Best-effort cancel: resolves the ticket with kCancelled unless the
  /// outcome is already set. Returns true when the cancel won — the request
  /// will be dropped by a worker sweep before (or instead of) its grouped
  /// forward. False means the outcome was already resolved (served, expired,
  /// or a racing worker finished first); `get` reports which.
  bool cancel() {
    MGA_CHECK_MSG(valid(), "TuneTicket::cancel() on an invalid ticket");
    state_->request_cancel();
    return state_->resolve(ServeError{ServeErrorKind::kCancelled, "cancelled by caller", nullptr});
  }

 private:
  std::shared_ptr<TicketState> state_;
};

}  // namespace mga::serve
