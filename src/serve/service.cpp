#include "serve/service.hpp"

#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace mga::serve {

namespace {

/// Legacy error surface of the v1 shims: rethrow the wrapped exception when
/// there is one, else wrap the taxonomy in a runtime_error.
[[noreturn]] void throw_serve_error(const ServeError& error) {
  if (error.cause) std::rethrow_exception(error.cause);
  throw std::runtime_error(std::string("TuningService: ") + to_string(error.kind) +
                           (error.detail.empty() ? "" : ": " + error.detail));
}

}  // namespace

TuningService::TuningService(std::shared_ptr<ModelRegistry> registry, ServeOptions options)
    : registry_(std::move(registry)),
      options_(options),
      router_(options.shards == 0 ? 1 : options.shards) {
  MGA_CHECK_MSG(registry_ != nullptr, "TuningService: null registry");
  MGA_CHECK_MSG(options_.shards > 0, "TuningService: need at least one shard");
  retrain::ObservationFn observer;
  if (options_.retrain.enabled) {
    // The controller reaches the fleet through these hooks only; they run on
    // the controller thread, which shutdown() stops before any shard joins,
    // so `shards_` always outlives every hook invocation.
    retrain::RetrainController::Hooks hooks;
    hooks.shard_of = [this](std::uint64_t key) { return router_.shard_for(key); };
    hooks.pause_shard = [this](std::size_t shard) { shards_[shard]->pause(); };
    hooks.resume_shard = [this](std::size_t shard) { shards_[shard]->resume(); };
    hooks.begin_canary = [this](std::size_t shard,
                                std::shared_ptr<const retrain::CanaryAssignment> assignment) {
      shards_[shard]->set_canary(std::move(assignment));
    };
    hooks.end_canary = [this](std::size_t shard, const std::string& machine) {
      shards_[shard]->clear_canary(machine);
    };
    retrain_ = std::make_unique<retrain::RetrainController>(registry_, options_.retrain,
                                                            std::move(hooks));
    observer = [controller = retrain_.get()](const retrain::ServedSample& sample) {
      controller->record(sample);
    };
  }
  shards_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    ServeOptions shard_options = options_;
    shard_options.shard_index = s;  // stamped on the shard's trace spans
    shards_.push_back(std::make_unique<ServeShard>(registry_, shard_options, observer));
  }
}

TuningService::~TuningService() { shutdown(); }

std::optional<ServeError> TuningService::resolve_machine(TuneRequest& request) const {
  if (request.machine.empty()) {
    if (!options_.default_machine.empty()) {
      request.machine = options_.default_machine;
    } else {
      const std::vector<std::string> names = registry_->names();
      if (names.size() != 1) {
        const char* detail =
            "TuningService: request names no machine and no default is configured";
        return ServeError{ServeErrorKind::kUnknownMachine, detail,
                          std::make_exception_ptr(std::invalid_argument(detail))};
      }
      request.machine = names.front();
    }
  }
  if (!registry_->contains(request.machine)) {
    const std::string detail = "TuningService: unknown machine '" + request.machine + "'";
    return ServeError{ServeErrorKind::kUnknownMachine, detail,
                      std::make_exception_ptr(std::out_of_range(detail))};
  }
  return std::nullopt;
}

ServeShard& TuningService::shard_for(const TuneRequest& request) {
  return *shards_[router_.shard_for(
      route_key(request.machine, route_fingerprint(request.kernel)))];
}

TuneTicket TuningService::submit(TuneRequest request) {
  using SteadyClock = std::chrono::steady_clock;
  const bool traced = obs::enabled();
  const SteadyClock::time_point submit_start = traced ? SteadyClock::now()
                                                      : SteadyClock::time_point{};
  if (traced && !request.trace) {
    request.trace.id = obs::TraceCollector::instance().next_request_id();
  }
  auto state = std::make_shared<TicketState>();
  TuneTicket ticket(state);

  if (std::optional<ServeError> error = resolve_machine(request)) {
    // Unroutable in the proper sense (the machine may not exist), but a
    // deterministic hash of whatever was asked for still attributes the
    // failure to exactly one shard — so per-shard counters always sum to
    // the service totals.
    ServiceStats& stats = shard_for(request).stats();
    // Stats before resolve: a getter may read a snapshot the instant it
    // wakes, and must see its own failure already counted.
    stats.record_submit();
    stats.record_failed();
    state->resolve(std::move(*error));
    return ticket;
  }
  const SteadyClock::time_point route_start = traced ? SteadyClock::now()
                                                     : SteadyClock::time_point{};
  const std::size_t shard_index =
      router_.shard_for(route_key(request.machine, route_fingerprint(request.kernel)));
  const std::uint64_t trace_id = request.trace.id;
  if (traced && trace_id != 0) {
    obs::TraceCollector::instance().record_span(trace_id, obs::Stage::kRoute,
                                                static_cast<std::uint32_t>(shard_index),
                                                route_start, SteadyClock::now());
  }
  shards_[shard_index]->submit(std::move(request), std::move(state));
  if (traced && trace_id != 0) {
    // The whole submit call (resolve + route + admission, including any
    // blocking-admission stall); overlaps the route span and the head of
    // queue-wait, so it is trace-visible but never attributed.
    obs::TraceCollector::instance().record_span(trace_id, obs::Stage::kSubmit,
                                                static_cast<std::uint32_t>(shard_index),
                                                submit_start, SteadyClock::now());
  }
  return ticket;
}

std::future<TuneResult> TuningService::submit_future(TuneRequest request) {
  // Promise-backed so the future becomes ready the moment the request
  // resolves (v1 semantics: wait_for/wait_until work), not on first get().
  auto promise = std::make_shared<std::promise<TuneResult>>();
  std::future<TuneResult> future = promise->get_future();
  submit(std::move(request)).on_resolved([promise](const TuneOutcome& outcome) {
    if (outcome.ok()) {
      promise->set_value(outcome.value());
      return;
    }
    try {
      throw_serve_error(outcome.error());
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

std::vector<TuneResult> TuningService::tune_all(std::vector<TuneRequest> requests) {
  std::vector<TuneTicket> tickets;
  tickets.reserve(requests.size());
  for (auto& request : requests) tickets.push_back(submit(std::move(request)));
  std::vector<TuneResult> results;
  results.reserve(tickets.size());
  for (const TuneTicket& ticket : tickets) {
    TuneOutcome outcome = ticket.get();
    if (!outcome.ok()) throw_serve_error(outcome.error());
    results.push_back(std::move(outcome.value()));
  }
  return results;
}

void TuningService::pause() {
  for (const auto& shard : shards_) shard->pause();
}

void TuningService::resume() {
  for (const auto& shard : shards_) shard->resume();
}

void TuningService::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  // Stop the retrain controller first: a cycle in flight completes (its
  // pause/resume pairing is never torn), queued cycles are discarded, and no
  // hook can touch a shard after this returns.
  if (retrain_) retrain_->stop();
  // Close every queue so submitters fail fast and all shards drain their
  // backlogs concurrently, then reap the worker pools.
  for (const auto& shard : shards_) shard->close();
  for (const auto& shard : shards_) shard->join();
}

ServiceStatsSnapshot TuningService::stats_snapshot() const {
  if (shards_.size() == 1) {
    // Fast path, and exactly the unsharded service's snapshot (aggregation
    // would re-derive the means from rounded sums).
    ServiceStatsSnapshot s = shards_.front()->stats_snapshot();
    ServiceStatsSnapshot breakdown = s;  // breakdown of one: itself
    s.shards.push_back(std::move(breakdown));
    return s;
  }
  std::vector<ServiceStatsSnapshot> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) per_shard.push_back(shard->stats_snapshot());
  return aggregate_snapshots(std::move(per_shard));
}

}  // namespace mga::serve
