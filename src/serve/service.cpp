#include "serve/service.hpp"

#include <iterator>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/telemetry.hpp"
#include "util/check.hpp"

namespace mga::serve {

namespace {

/// Legacy error surface of the v1 shims: rethrow the wrapped exception when
/// there is one, else wrap the taxonomy in a runtime_error.
[[noreturn]] void throw_serve_error(const ServeError& error) {
  if (error.cause) std::rethrow_exception(error.cause);
  throw std::runtime_error(std::string("TuningService: ") + to_string(error.kind) +
                           (error.detail.empty() ? "" : ": " + error.detail));
}

}  // namespace

TuningService::TuningService(std::shared_ptr<ModelRegistry> registry, ServeOptions options)
    : registry_(std::move(registry)),
      options_(options),
      router_(options.shards == 0 ? 1 : options.shards) {
  MGA_CHECK_MSG(registry_ != nullptr, "TuningService: null registry");
  MGA_CHECK_MSG(options_.shards > 0, "TuningService: need at least one shard");
  if (!options_.tenant.tenants.empty()) {
    // Normalize the TenantPolicy before any shard copies it: guarantee a
    // "default" tenant (prepended at index 0 unless one is listed), then
    // build the name → index map submit resolves through. Every shard runs
    // the identical normalized policy, so per-tenant stats merge by index.
    bool has_default = false;
    for (const TenantSpec& spec : options_.tenant.tenants)
      if (spec.name == "default") has_default = true;
    if (!has_default) {
      TenantSpec implicit;
      implicit.name = "default";  // weight 1, no quota
      options_.tenant.tenants.insert(options_.tenant.tenants.begin(), implicit);
    }
    for (std::size_t i = 0; i < options_.tenant.tenants.size(); ++i) {
      const std::string& name = options_.tenant.tenants[i].name;
      MGA_CHECK_MSG(tenant_index_.emplace(name, static_cast<std::uint32_t>(i)).second,
                    "TuningService: duplicate tenant name in TenantPolicy");
      if (name == "default") default_tenant_ = static_cast<std::uint32_t>(i);
    }
  }
  if (options_.record_trace)
    recorder_ = std::make_unique<load::TraceRecorder>(options_.record_trace_capacity);
  if (options_.telemetry.enabled) {
    obs::StallWatchdog::Options watchdog_options;
    watchdog_options.period = options_.telemetry.watchdog_period;
    watchdog_options.stall_after = options_.telemetry.watchdog_stall_after;
    watchdog_ = std::make_unique<obs::StallWatchdog>(watchdog_options);
  }
  retrain::ObservationFn observer;
  if (options_.retrain.enabled) {
    // The controller reaches the fleet through these hooks only; they run on
    // the controller thread, which shutdown() stops before any shard joins,
    // so `shards_` always outlives every hook invocation.
    retrain::RetrainController::Hooks hooks;
    hooks.shard_of = [this](std::uint64_t key) { return router_.shard_for(key); };
    hooks.pause_shard = [this](std::size_t shard) { shards_[shard]->pause(); };
    hooks.resume_shard = [this](std::size_t shard) { shards_[shard]->resume(); };
    hooks.begin_canary = [this](std::size_t shard,
                                std::shared_ptr<const retrain::CanaryAssignment> assignment) {
      shards_[shard]->set_canary(std::move(assignment));
    };
    hooks.end_canary = [this](std::size_t shard, const std::string& machine) {
      shards_[shard]->clear_canary(machine);
    };
    retrain_ = std::make_unique<retrain::RetrainController>(registry_, options_.retrain,
                                                            std::move(hooks));
    observer = [controller = retrain_.get()](const retrain::ServedSample& sample) {
      controller->record(sample);
    };
    if (watchdog_) {
      // The controller is a watched stage too: a deadlocked cycle (a hook
      // that never returns, a wedged quiesce) shows up as a stalled probe.
      // Long leash — a cycle legitimately spends tens of seconds in a
      // fine-tune or a canary sample window between beats.
      obs::WatchdogProbe probe;
      probe.name = "retrain/controller";
      probe.heartbeat = &retrain_->heartbeat();
      probe.pending = [controller = retrain_.get()] { return controller->pending_count(); };
      probe.stall_after = std::chrono::seconds(60);
      watchdog_->add_probe(std::move(probe));
    }
  }
  shards_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    ServeOptions shard_options = options_;
    shard_options.shard_index = s;  // stamped on the shard's trace spans
    shards_.push_back(
        std::make_unique<ServeShard>(registry_, shard_options, observer, watchdog_.get()));
  }
  if (watchdog_) watchdog_->start();
  if (options_.telemetry.enabled && options_.telemetry.http) {
    obs::ObsServerOptions server_options;
    server_options.bind_address = options_.telemetry.http_address;
    server_options.port = options_.telemetry.http_port;
    server_ = std::make_unique<obs::ObsServer>(server_options);
    register_telemetry_endpoints(*server_, *this);
    server_->start();  // throws on bind failure — surfaced to the creator
  }
  started_ = std::chrono::steady_clock::now();
}

TuningService::~TuningService() { shutdown(); }

std::optional<ServeError> TuningService::resolve_machine(TuneRequest& request) const {
  if (request.machine.empty()) {
    if (!options_.default_machine.empty()) {
      request.machine = options_.default_machine;
    } else {
      const std::vector<std::string> names = registry_->names();
      if (names.size() != 1) {
        const char* detail =
            "TuningService: request names no machine and no default is configured";
        return ServeError{ServeErrorKind::kUnknownMachine, detail,
                          std::make_exception_ptr(std::invalid_argument(detail))};
      }
      request.machine = names.front();
    }
  }
  if (!registry_->contains(request.machine)) {
    const std::string detail = "TuningService: unknown machine '" + request.machine + "'";
    return ServeError{ServeErrorKind::kUnknownMachine, detail,
                      std::make_exception_ptr(std::out_of_range(detail))};
  }
  return std::nullopt;
}

ServeShard& TuningService::shard_for(const TuneRequest& request) {
  return *shards_[router_.shard_for(
      route_key(request.machine, route_fingerprint(request.kernel)))];
}

TuneTicket TuningService::submit(TuneRequest request) {
  using SteadyClock = std::chrono::steady_clock;
  const bool traced = obs::enabled();
  const SteadyClock::time_point submit_start = traced ? SteadyClock::now()
                                                      : SteadyClock::time_point{};
  if (traced && !request.trace) {
    request.trace.id = obs::TraceCollector::instance().next_request_id();
  }
  auto state = std::make_shared<TicketState>();
  TuneTicket ticket(state);

  if (std::optional<ServeError> error = resolve_machine(request)) {
    // Unroutable in the proper sense (the machine may not exist), but a
    // deterministic hash of whatever was asked for still attributes the
    // failure to exactly one shard — so per-shard counters always sum to
    // the service totals.
    ServiceStats& stats = shard_for(request).stats();
    // Stats before resolve: a getter may read a snapshot the instant it
    // wakes, and must see its own failure already counted.
    stats.record_submit();
    stats.record_failed();
    state->resolve(std::move(*error));
    return ticket;
  }
  const SteadyClock::time_point route_start = traced ? SteadyClock::now()
                                                     : SteadyClock::time_point{};
  // Stamped once and reused: the router, the canary split, and the SLO
  // tracker's per-route windows all key on the same value.
  request.route = route_key(request.machine, route_fingerprint(request.kernel));
  if (!tenant_index_.empty()) {
    // Resolve the caller's tenant name to its policy index; empty or
    // unknown names bill the default tenant (never an error — QoS must not
    // reject traffic for a typo, just account it conservatively).
    const auto it = tenant_index_.find(request.options.tenant);
    request.tenant = it != tenant_index_.end() ? it->second : default_tenant_;
  }
  if (recorder_ != nullptr) {
    // Absolute arrival stamp; the recorder rebases a snapshot to its first
    // retained record, so only deltas ever leave the process.
    const auto now_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            SteadyClock::now().time_since_epoch())
            .count());
    const auto deadline_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(request.options.deadline)
            .count());
    recorder_->record(now_us, request.route, deadline_us, request.tenant,
                      static_cast<std::uint8_t>(request.options.priority));
  }
  const std::size_t shard_index = router_.shard_for(request.route);
  const std::uint64_t trace_id = request.trace.id;
  if (traced && trace_id != 0) {
    obs::TraceCollector::instance().record_span(trace_id, obs::Stage::kRoute,
                                                static_cast<std::uint32_t>(shard_index),
                                                route_start, SteadyClock::now());
  }
  shards_[shard_index]->submit(std::move(request), std::move(state));
  if (traced && trace_id != 0) {
    // The whole submit call (resolve + route + admission, including any
    // blocking-admission stall); overlaps the route span and the head of
    // queue-wait, so it is trace-visible but never attributed.
    obs::TraceCollector::instance().record_span(trace_id, obs::Stage::kSubmit,
                                                static_cast<std::uint32_t>(shard_index),
                                                submit_start, SteadyClock::now());
  }
  return ticket;
}

std::future<TuneResult> TuningService::submit_future(TuneRequest request) {
  // Promise-backed so the future becomes ready the moment the request
  // resolves (v1 semantics: wait_for/wait_until work), not on first get().
  auto promise = std::make_shared<std::promise<TuneResult>>();
  std::future<TuneResult> future = promise->get_future();
  submit(std::move(request)).on_resolved([promise](const TuneOutcome& outcome) {
    if (outcome.ok()) {
      promise->set_value(outcome.value());
      return;
    }
    try {
      throw_serve_error(outcome.error());
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

std::vector<TuneResult> TuningService::tune_all(std::vector<TuneRequest> requests) {
  std::vector<TuneTicket> tickets;
  tickets.reserve(requests.size());
  for (auto& request : requests) tickets.push_back(submit(std::move(request)));
  std::vector<TuneResult> results;
  results.reserve(tickets.size());
  for (const TuneTicket& ticket : tickets) {
    TuneOutcome outcome = ticket.get();
    if (!outcome.ok()) throw_serve_error(outcome.error());
    results.push_back(std::move(outcome.value()));
  }
  return results;
}

bool TuningService::chaos_kill_dispatcher(std::size_t index) {
  return index < shards_.size() && shards_[index]->chaos_kill_dispatcher();
}

bool TuningService::revive_shard(std::size_t index) {
  return index < shards_.size() && shards_[index]->revive_dispatcher();
}

void TuningService::pause() {
  for (const auto& shard : shards_) shard->pause();
}

void TuningService::resume() {
  for (const auto& shard : shards_) shard->resume();
}

void TuningService::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  // Telemetry plane first: no scrape may observe a half-dead fleet, and the
  // watchdog's probe lambdas read shard/controller state, so both must be
  // quiet before anything they watch is torn down.
  if (server_) server_->stop();
  if (watchdog_) watchdog_->stop();
  // Stop the retrain controller before the shards: a cycle in flight
  // completes (its pause/resume pairing is never torn), queued cycles are
  // discarded, and no hook can touch a shard after this returns.
  if (retrain_) retrain_->stop();
  // Close every queue so submitters fail fast and all shards drain their
  // backlogs concurrently, then reap the worker pools.
  for (const auto& shard : shards_) shard->close();
  for (const auto& shard : shards_) shard->join();
}

ServiceStatsSnapshot TuningService::stats_snapshot() const {
  ServiceStatsSnapshot s;
  if (shards_.size() == 1) {
    // Fast path, and exactly the unsharded service's snapshot (aggregation
    // would re-derive the means from rounded sums).
    s = shards_.front()->stats_snapshot();
    ServiceStatsSnapshot breakdown = s;  // breakdown of one: itself
    s.shards.push_back(std::move(breakdown));
  } else {
    std::vector<ServiceStatsSnapshot> per_shard;
    per_shard.reserve(shards_.size());
    for (const auto& shard : shards_) per_shard.push_back(shard->stats_snapshot());
    s = aggregate_snapshots(std::move(per_shard));
  }
  if (options_.telemetry.enabled) {
    // Stamp the telemetry header: uptime, per-shard and combined health,
    // and the SLO long-window totals behind the compliance row.
    const double uptime = uptime_seconds();
    const std::vector<obs::SloTracker::Snapshot> per_shard = shard_slo_snapshots();
    for (std::size_t i = 0; i < s.shards.size() && i < per_shard.size(); ++i) {
      s.shards[i].uptime_seconds = uptime;
      s.shards[i].health = per_shard[i].state;
      for (const obs::SloTracker::TierVerdict& tier : per_shard[i].tiers) {
        s.shards[i].slo_window_total += tier.long_window.total;
        s.shards[i].slo_window_bad += tier.long_window.errors + tier.long_window.latency_bad;
      }
    }
    const obs::SloTracker::Snapshot aggregate =
        obs::SloTracker::aggregate(per_shard, options_.telemetry.slo);
    s.uptime_seconds = uptime;
    s.health = obs::worse(aggregate.state,
                          watchdog_ ? watchdog_->health() : obs::HealthState::kOk);
    for (const obs::SloTracker::TierVerdict& tier : aggregate.tiers) {
      s.slo_window_total += tier.long_window.total;
      s.slo_window_bad += tier.long_window.errors + tier.long_window.latency_bad;
    }
  }
  return s;
}

obs::HealthState TuningService::health() const {
  obs::HealthState state = slo_snapshot().state;
  if (watchdog_) state = obs::worse(state, watchdog_->health());
  return state;
}

std::vector<obs::SloTracker::Snapshot> TuningService::shard_slo_snapshots() const {
  // One `now` across shards, so the aggregate merges the same windows.
  const auto now = std::chrono::steady_clock::now();
  std::vector<obs::SloTracker::Snapshot> snapshots;
  snapshots.reserve(shards_.size());
  for (const auto& shard : shards_) snapshots.push_back(shard->slo_snapshot(now));
  return snapshots;
}

obs::SloTracker::Snapshot TuningService::slo_snapshot() const {
  return obs::SloTracker::aggregate(shard_slo_snapshots(), options_.telemetry.slo);
}

std::vector<obs::Exemplar> TuningService::exemplar_snapshot() const {
  std::vector<obs::Exemplar> exemplars;
  for (const auto& shard : shards_) {
    if (obs::ExemplarReservoir* reservoir = shard->exemplars()) {
      std::vector<obs::Exemplar> mine = reservoir->snapshot();
      exemplars.insert(exemplars.end(), std::make_move_iterator(mine.begin()),
                       std::make_move_iterator(mine.end()));
    }
  }
  return exemplars;
}

std::string TuningService::metrics_prometheus() const {
  obs::MetricsRegistry registry;
  export_service_metrics(registry, stats_snapshot());
  if (options_.telemetry.enabled) {
    const std::vector<obs::SloTracker::Snapshot> per_shard = shard_slo_snapshots();
    export_slo_metrics(registry,
                       obs::SloTracker::aggregate(per_shard, options_.telemetry.slo),
                       per_shard);
    if (watchdog_) export_watchdog_metrics(registry, watchdog_->snapshot());
  }
  // Cross-cutting process instruments (runtime-plan compile/execute
  // counters) ride along, so one scrape covers serve + runtime.
  return registry.to_prometheus() + obs::MetricsRegistry::global().to_prometheus();
}

double TuningService::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - started_).count();
}

}  // namespace mga::serve
