#include "serve/service.hpp"

#include <stdexcept>
#include <utility>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace mga::serve {

namespace {

[[nodiscard]] double micros_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

TuningService::TuningService(std::shared_ptr<ModelRegistry> registry, ServeOptions options)
    : registry_(std::move(registry)),
      options_(options),
      cache_(options.cache),
      queue_(options.queue_capacity) {
  MGA_CHECK_MSG(registry_ != nullptr, "TuningService: null registry");
  MGA_CHECK_MSG(options_.workers > 0, "TuningService: need at least one worker");
  MGA_CHECK_MSG(options_.max_batch > 0, "TuningService: max_batch must be positive");
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

TuningService::~TuningService() { shutdown(); }

std::string TuningService::resolve_machine(const TuneRequest& request) const {
  if (!request.machine.empty()) return request.machine;
  if (!options_.default_machine.empty()) return options_.default_machine;
  const std::vector<std::string> names = registry_->names();
  if (names.size() == 1) return names.front();
  throw std::invalid_argument(
      "TuningService: request names no machine and no default is configured");
}

std::future<TuneResult> TuningService::submit(TuneRequest request) {
  Pending pending;
  pending.request = std::move(request);
  std::future<TuneResult> future = pending.promise.get_future();
  stats_.record_submit();

  try {
    pending.request.machine = resolve_machine(pending.request);
  } catch (...) {
    // Contract: service errors surface through the future, not the call.
    pending.promise.set_exception(std::current_exception());
    stats_.record_failed();
    return future;
  }
  pending.group_key = util::hash_combine(util::fnv1a(pending.request.machine),
                                         util::fnv1a(pending.request.kernel.name));
  pending.enqueued = std::chrono::steady_clock::now();

  if (!queue_.push(std::move(pending))) {
    // Queue already closed: the promise was moved into the dropped item, so
    // report the rejection through a fresh promise.
    std::promise<TuneResult> rejected;
    future = rejected.get_future();
    rejected.set_exception(std::make_exception_ptr(
        std::runtime_error("TuningService: submit after shutdown")));
    stats_.record_failed();
  }
  return future;
}

std::vector<TuneResult> TuningService::tune_all(std::vector<TuneRequest> requests) {
  std::vector<std::future<TuneResult>> futures;
  futures.reserve(requests.size());
  for (auto& request : requests) futures.push_back(submit(std::move(request)));
  std::vector<TuneResult> results;
  results.reserve(futures.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

void TuningService::worker_loop() {
  while (auto first = queue_.pop()) {
    std::vector<Pending> batch;
    // Reserve up front: the drain predicate reads refs into batch.front(),
    // which must not move while drain_matching appends.
    batch.reserve(options_.max_batch);
    batch.push_back(std::move(*first));
    const std::uint64_t key = batch.front().group_key;
    const corpus::KernelSpec& kernel = batch.front().request.kernel;
    const std::string& machine = batch.front().request.machine;
    if (options_.max_batch > 1) {
      queue_.drain_matching(
          [&](const Pending& p) {
            // Full spec equality: a name may be shared by specs with
            // different params, which must not ride one batch (the hash of
            // machine+name is only the cheap first-pass reject).
            return p.group_key == key && p.request.machine == machine &&
                   p.request.kernel == kernel;
          },
          options_.max_batch - 1, batch);
    }
    process_batch(batch);
  }
}

void TuningService::process_batch(std::vector<Pending>& batch) {
  std::vector<hwsim::OmpConfig> configs;
  bool cache_hit = false;
  try {
    // Key the cache on the registration tag, not the machine name: a
    // hot-swapped tuner under the same name must not hit entries whose
    // scaled vectors were fitted against the old tuner's corpus.
    const ModelRegistry::Resolved resolved =
        registry_->resolve(batch.front().request.machine);
    const std::shared_ptr<const core::MgaTuner>& tuner = resolved.tuner;
    const std::shared_ptr<const FeatureCache::Entry> entry =
        cache_.get(batch.front().request.kernel, *tuner, resolved.tag, &cache_hit);

    std::vector<hwsim::PapiCounters> counters;
    counters.reserve(batch.size());
    for (const Pending& pending : batch)
      counters.push_back(pending.request.counters
                             ? *pending.request.counters
                             : cache_.counters_for(*entry, *tuner, pending.request.input_bytes));
    configs = tuner->tune_group(entry->features, counters);
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (Pending& pending : batch) pending.promise.set_exception(error);
    stats_.record_failed(batch.size());
    return;
  }

  stats_.record_batch(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    TuneResult result;
    result.config = configs[i];
    result.cache_hit = cache_hit;
    result.batch_size = batch.size();
    result.latency_us = micros_since(batch[i].enqueued);
    stats_.record_completion(result.latency_us);
    batch[i].promise.set_value(std::move(result));
  }
}

void TuningService::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.close();
  for (std::thread& worker : workers_) worker.join();
}

ServiceStatsSnapshot TuningService::stats_snapshot() const {
  return stats_.snapshot(cache_.stats());
}

}  // namespace mga::serve
