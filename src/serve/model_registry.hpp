// Registry of per-machine trained tuners.
//
// The service asks it by name ("comet-lake", "skylake-sp", ...); entries are
// either tuners handed over ready-trained or `MgaTuner::save` artifacts that
// are loaded on first use (load rebuilds the dataset statistics from the
// stored options, so it is slow once and free afterwards). All access is
// serialized on one mutex: loads are rare and must happen exactly once.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/tuner.hpp"

namespace mga::serve {

/// Thrown by `get`/`resolve` when a registered artifact fails to load; the
/// serve layer maps it onto ServeErrorKind::kLoadFailed (as opposed to the
/// std::out_of_range of an unknown name -> kUnknownMachine).
class LoadError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ModelRegistry {
 public:
  /// Register a ready-trained tuner under `name` (replaces any previous
  /// entry with that name).
  void add(const std::string& name, core::MgaTuner tuner);

  /// Register a saved artifact; `MgaTuner::load(path, options)` runs on the
  /// first `get(name)`.
  void add_artifact(const std::string& name, const std::string& path,
                    core::MgaTunerOptions options = {});

  /// A resolved registry entry: the tuner plus a tag unique to this
  /// registration. Re-registering a name (hot swap) issues a fresh tag, so
  /// caches keyed on it cannot serve features derived from the old tuner.
  struct Resolved {
    std::shared_ptr<const core::MgaTuner> tuner;
    std::uint64_t tag = 0;
  };

  /// The tuner registered under `name`, loading it on demand. Throws
  /// std::out_of_range for unknown names.
  [[nodiscard]] std::shared_ptr<const core::MgaTuner> get(const std::string& name) const;

  /// Like `get`, but also returns the registration tag.
  [[nodiscard]] Resolved resolve(const std::string& name) const;

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  struct Slot {
    std::shared_ptr<const core::MgaTuner> tuner;  // null until loaded
    std::string artifact_path;
    std::optional<core::MgaTunerOptions> options;
    std::uint64_t tag = 0;  // unique per registration
  };

  mutable std::mutex mutex_;
  mutable std::map<std::string, Slot> slots_;
};

}  // namespace mga::serve
