// Registry of per-machine trained tuners.
//
// The service asks it by name ("comet-lake", "skylake-sp", ...); entries are
// either tuners handed over ready-trained or `MgaTuner::save` artifacts that
// are loaded on first use (load rebuilds the dataset statistics from the
// stored options, so it is slow once and free afterwards). Reads (the
// per-batch registry resolve on every worker) take the mutex shared;
// mutations and the once-per-artifact lazy load take it exclusive.
//
// Slots are versioned and support a *provisional* generation for canary
// rollout: `stage` registers a candidate next to the incumbent under the
// next generation number without touching what `resolve` serves; shards that
// opt in resolve the candidate explicitly (`try_resolve_canary`) for the
// canaried fraction of traffic; `promote` makes the candidate the slot's
// tuner and `discard` drops it. Generation numbers are never reused — a
// discarded candidate's number is burned, so a `TuneResult::model_generation`
// identifies exactly one model forever.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/tuner.hpp"
#include "obs/probe.hpp"

namespace mga::runtime {
class CompiledForward;
}

namespace mga::serve {

/// Thrown by `get`/`resolve` when a registered artifact fails to load — the
/// serve layer maps it onto ServeErrorKind::kLoadFailed (as opposed to the
/// std::out_of_range of an unknown name -> kUnknownMachine) — and by the
/// slot-mutating calls (`swap`/`stage`/`promote`/`discard`) on a name that
/// was never added: a mutation cannot conjure a slot (and with provisional
/// generations a silently created slot would mint generation numbers for a
/// model that does not exist).
class LoadError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ModelRegistry {
 public:
  /// Register a ready-trained tuner under `name`. Names are versioned slots:
  /// registering an existing name throws std::invalid_argument — replacing a
  /// live model is an explicit `swap`, never an accidental overwrite.
  void add(const std::string& name, core::MgaTuner tuner);

  /// Register a saved artifact; `MgaTuner::load(path, options)` runs on the
  /// first `get(name)`. Same no-overwrite rule as `add`.
  void add_artifact(const std::string& name, const std::string& path,
                    core::MgaTunerOptions options = {});

  /// Hot-swap: atomically replace the tuner in `name`'s slot and bump its
  /// generation. Throws LoadError for unknown names (a swap cannot create a
  /// slot). Returns the new generation. A staged canary candidate, if any,
  /// is discarded — an out-of-band swap supersedes a rollout in progress.
  /// In-flight batches that already resolved the old entry keep serving it
  /// (they hold a shared_ptr); every later resolve sees the new tuner, its
  /// fresh cache tag, and the incremented generation — no in-between state.
  std::uint64_t swap(const std::string& name, core::MgaTuner tuner);

  /// A resolved registry entry: the tuner, a tag unique to this registration
  /// (hot swaps and staged candidates issue fresh tags, so caches keyed on
  /// it cannot serve features derived from another tuner), the slot's (or
  /// candidate's) generation, and whether this is a provisional canary.
  struct Resolved {
    std::shared_ptr<const core::MgaTuner> tuner;
    /// The tuner's compiled runtime plan, cached per generation (compiled
    /// when the generation enters the registry, carried through
    /// stage/promote with the tuner it was compiled against). Null when
    /// compilation failed — the serve forward falls back to the interpreter.
    std::shared_ptr<const runtime::CompiledForward> plan;
    std::uint64_t tag = 0;
    std::uint64_t generation = 0;
    bool canary = false;
  };

  /// The tuner registered under `name`, loading it on demand. Throws
  /// std::out_of_range for unknown names.
  [[nodiscard]] std::shared_ptr<const core::MgaTuner> get(const std::string& name) const;

  /// Like `get`, but also returns the registration tag. Always the
  /// incumbent — a staged candidate is only reachable via
  /// `try_resolve_canary`.
  [[nodiscard]] Resolved resolve(const std::string& name) const;

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Current generation of `name`'s slot (no load is forced; a staged
  /// candidate does not change it until promoted). Throws std::out_of_range
  /// for unknown names.
  [[nodiscard]] std::uint64_t generation(const std::string& name) const;

  // --- provisional generations (canary rollout) ------------------------------

  /// Stage `tuner` as `name`'s canary candidate under a fresh provisional
  /// generation (always > every generation this slot ever issued, never
  /// reused even if the candidate is discarded). The incumbent keeps
  /// serving `resolve`; only explicit `try_resolve_canary` callers see the
  /// candidate. Throws LoadError for unknown names and std::invalid_argument
  /// when a candidate is already staged (one rollout at a time per slot).
  /// Returns the provisional generation.
  std::uint64_t stage(const std::string& name, core::MgaTuner tuner);

  /// The staged candidate, or nullopt when none is staged. Throws
  /// std::out_of_range for unknown names.
  [[nodiscard]] std::optional<Resolved> try_resolve_canary(const std::string& name) const;

  /// The staged candidate's provisional generation, 0 when none. Throws
  /// std::out_of_range for unknown names.
  [[nodiscard]] std::uint64_t canary_generation(const std::string& name) const;

  /// Promote the staged candidate: it becomes the slot's tuner and the slot's
  /// generation becomes its provisional generation. The candidate keeps its
  /// registration tag, so feature-cache entries warmed during the canary
  /// phase stay valid after promotion. Throws LoadError when `name` is
  /// unknown or has no staged candidate. Returns the new generation.
  std::uint64_t promote(const std::string& name);

  /// Drop the staged candidate (rollback): the incumbent keeps serving and
  /// the provisional generation number is burned. Returns whether a
  /// candidate was staged. Throws LoadError for unknown names.
  bool discard(const std::string& name);

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Chaos seam (bench/test only — DESIGN.md §13): the next `count` resolves
  /// of `name` throw LoadError before touching the slot, as if the backing
  /// artifact had gone bad, then resolution self-heals. The serve layer must
  /// surface each as a typed kLoadFailed outcome; the entry itself (and any
  /// shared_ptr an in-flight batch already holds) is untouched. Costs one
  /// relaxed atomic load per resolve when no fault is armed.
  void inject_resolve_fault(const std::string& name, std::size_t count);

 private:
  struct Slot {
    std::shared_ptr<const core::MgaTuner> tuner;  // null until loaded
    std::shared_ptr<const runtime::CompiledForward> plan;  // null = interpret
    std::string artifact_path;
    std::optional<core::MgaTunerOptions> options;
    std::uint64_t tag = 0;         // unique per registration (fresh on swap)
    std::uint64_t generation = 1;  // monotone per name, bumped by swap/promote
    /// High-water mark of generation numbers this slot ever issued
    /// (including discarded provisional ones) — the source `swap` and
    /// `stage` draw from, so no two models ever share a number.
    std::uint64_t last_generation = 1;
    // Staged canary candidate; generation 0 = none.
    std::shared_ptr<const core::MgaTuner> canary;
    std::shared_ptr<const runtime::CompiledForward> canary_plan;
    std::uint64_t canary_tag = 0;
    std::uint64_t canary_generation = 0;
  };

  /// Compile `tuner`'s runtime plan; never throws — a failed compile logs
  /// through the global metrics registry and returns null (interpreter
  /// fallback). Records an obs kPlanCompile span when tracing is enabled.
  [[nodiscard]] static std::shared_ptr<const runtime::CompiledForward> compile_plan(
      const core::MgaTuner& tuner) noexcept;

  /// `slots_.find` that throws LoadError for mutating callers on a missing
  /// name (`what` names the operation).
  [[nodiscard]] std::map<std::string, Slot>::iterator find_for_mutation(
      const std::string& name, const char* what);

  /// Consume one injected fault for `name` (exclusive lock); false when none
  /// is armed. Only called when `fault_total_` says a fault exists somewhere.
  [[nodiscard]] bool consume_fault(const std::string& name) const;

  // Reader/writer probe: every batch resolves the registry, so an exclusive
  // mutex here would serialize all shards during hot swaps and canary churn.
  mutable obs::ProbedSharedMutex mutex_{"model_registry"};
  mutable std::map<std::string, Slot> slots_;
  /// Armed chaos faults (guarded by mutex_) and their total, kept as an
  /// atomic so the un-faulted resolve hot path never takes the lock for it.
  mutable std::map<std::string, std::size_t> resolve_faults_;
  mutable std::atomic<std::size_t> fault_total_{0};
};

}  // namespace mga::serve
