// Registry of per-machine trained tuners.
//
// The service asks it by name ("comet-lake", "skylake-sp", ...); entries are
// either tuners handed over ready-trained or `MgaTuner::save` artifacts that
// are loaded on first use (load rebuilds the dataset statistics from the
// stored options, so it is slow once and free afterwards). All access is
// serialized on one mutex: loads are rare and must happen exactly once.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/tuner.hpp"

namespace mga::serve {

/// Thrown by `get`/`resolve` when a registered artifact fails to load; the
/// serve layer maps it onto ServeErrorKind::kLoadFailed (as opposed to the
/// std::out_of_range of an unknown name -> kUnknownMachine).
class LoadError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ModelRegistry {
 public:
  /// Register a ready-trained tuner under `name`. Names are versioned slots:
  /// registering an existing name throws std::invalid_argument — replacing a
  /// live model is an explicit `swap`, never an accidental overwrite.
  void add(const std::string& name, core::MgaTuner tuner);

  /// Register a saved artifact; `MgaTuner::load(path, options)` runs on the
  /// first `get(name)`. Same no-overwrite rule as `add`.
  void add_artifact(const std::string& name, const std::string& path,
                    core::MgaTunerOptions options = {});

  /// Hot-swap: atomically replace the tuner in `name`'s slot and bump its
  /// generation. Throws std::out_of_range for unknown names (a swap cannot
  /// create a slot). Returns the new generation. In-flight batches that
  /// already resolved the old entry keep serving it (they hold a shared_ptr);
  /// every later resolve sees the new tuner, its fresh cache tag, and the
  /// incremented generation — there is no in-between state.
  std::uint64_t swap(const std::string& name, core::MgaTuner tuner);

  /// A resolved registry entry: the tuner, a tag unique to this registration
  /// (hot swaps issue a fresh tag, so caches keyed on it cannot serve
  /// features derived from the old tuner), and the slot's generation — 1 for
  /// the initial registration, +1 per `swap`, monotone per name.
  struct Resolved {
    std::shared_ptr<const core::MgaTuner> tuner;
    std::uint64_t tag = 0;
    std::uint64_t generation = 0;
  };

  /// The tuner registered under `name`, loading it on demand. Throws
  /// std::out_of_range for unknown names.
  [[nodiscard]] std::shared_ptr<const core::MgaTuner> get(const std::string& name) const;

  /// Like `get`, but also returns the registration tag.
  [[nodiscard]] Resolved resolve(const std::string& name) const;

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Current generation of `name`'s slot (no load is forced). Throws
  /// std::out_of_range for unknown names.
  [[nodiscard]] std::uint64_t generation(const std::string& name) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  struct Slot {
    std::shared_ptr<const core::MgaTuner> tuner;  // null until loaded
    std::string artifact_path;
    std::optional<core::MgaTunerOptions> options;
    std::uint64_t tag = 0;         // unique per registration (fresh on swap)
    std::uint64_t generation = 1;  // monotone per name, bumped by swap
  };

  mutable std::mutex mutex_;
  mutable std::map<std::string, Slot> slots_;
};

}  // namespace mga::serve
