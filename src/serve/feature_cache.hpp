// Sharded LRU cache over the static half of the tuning pipeline.
//
// Key: FNV-1a hash of the kernel's printed IR, mixed with a per-tuner tag
// (the rank-scaled vector inside KernelFeatures is fitted against one tuner's
// training corpus, so per-machine tuners must not share entries). Content-
// addressing means every lookup regenerates and prints the (cheap) mini-IR
// to compute the key; what a hit skips is the expensive remainder —
// PROGRAML construction, IR2Vec encoding and corpus rank scaling, the
// dominant cost of `MgaTuner::tune`. Each entry additionally memoizes the
// default-config profiling counters per input size, so fully repeated
// (kernel, input) traffic needs no simulator run either. All determinism is
// preserved: every memoized value is a pure function of its key.
//
// Ownership under sharded serving: each `ServeShard` constructs its own
// FeatureCache from `ServeOptions::cache` (the options describe one shard's
// cache, not a service-wide budget). The consistent-hash router pins every
// (machine, kernel) to one shard, so per-shard caches partition the keyspace
// instead of duplicating it — a kernel's features are extracted once
// service-wide and stay resident on the shard all of its repeat traffic
// routes to. The `shards` knob *inside* FeatureCacheOptions is unrelated
// lock striping within one cache.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/tuner.hpp"
#include "obs/probe.hpp"
#include "serve/stats.hpp"

namespace mga::serve {

/// Hash of the kernel's generated IR text — the content-addressed identity
/// the cache keys on (generation is deterministic, so equal specs collide by
/// construction and differing bodies never do).
[[nodiscard]] std::uint64_t kernel_ir_hash(const corpus::KernelSpec& kernel);

struct FeatureCacheOptions {
  std::size_t shards = 8;
  std::size_t capacity_per_shard = 32;
  /// Max memoized profiling inputs per entry; further inputs are profiled
  /// without being stored.
  std::size_t profile_memo_capacity = 128;
};

class FeatureCache {
 public:
  struct Entry {
    core::KernelFeatures features;
    mutable std::mutex profile_mutex;
    mutable std::vector<std::pair<double, hwsim::PapiCounters>> profiles;
  };

  explicit FeatureCache(FeatureCacheOptions options = {});

  FeatureCache(const FeatureCache&) = delete;
  FeatureCache& operator=(const FeatureCache&) = delete;

  /// Features for `kernel` under `tuner`, computed via
  /// `MgaTuner::extract_features` on a miss. `tuner_tag` disambiguates
  /// tuners sharing the cache (use the registry name's hash). `was_hit`,
  /// when non-null, reports whether the lookup hit.
  [[nodiscard]] std::shared_ptr<const Entry> get(const corpus::KernelSpec& kernel,
                                                const core::MgaTuner& tuner,
                                                std::uint64_t tuner_tag,
                                                bool* was_hit = nullptr);

  /// Default-config profiling counters for (entry, input size): the entry's
  /// memo when present, else one simulator run (memoized up to the per-entry
  /// capacity). Deterministic — memoized and fresh values are identical.
  [[nodiscard]] hwsim::PapiCounters counters_for(const Entry& entry,
                                                 const core::MgaTuner& tuner,
                                                 double input_bytes);

  [[nodiscard]] FeatureCacheStats stats() const;

 private:
  struct Shard {
    // All cache stripes share one contention_table() row: the question the
    // probe answers is whether the cache lock *class* serializes the stack.
    mutable obs::ProbedMutex mutex{"feature_cache.shard"};
    std::list<std::uint64_t> recency;  // front = most recently used
    std::unordered_map<std::uint64_t,
                       std::pair<std::shared_ptr<Entry>, std::list<std::uint64_t>::iterator>>
        entries;
  };

  FeatureCacheOptions options_;
  std::vector<Shard> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
  mutable std::atomic<std::uint64_t> profile_memo_hits_{0};
  mutable std::atomic<std::uint64_t> profiles_run_{0};
};

}  // namespace mga::serve
