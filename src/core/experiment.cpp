#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

#include "nn/optim.hpp"
#include "util/check.hpp"

namespace mga::core {

namespace {

/// Group sample indices by kernel id (stable order).
[[nodiscard]] std::map<int, std::vector<int>> group_by_kernel(
    const std::vector<int>& samples, const auto& all_samples) {
  std::map<int, std::vector<int>> groups;
  for (const int index : samples)
    groups[all_samples[static_cast<std::size_t>(index)].kernel_id].push_back(index);
  return groups;
}

}  // namespace

std::vector<std::vector<float>> rank_scaled_vectors(
    const std::vector<std::vector<float>>& vectors, const std::vector<int>& train_kernels) {
  dataset::GaussianRankScaler scaler;
  std::vector<std::vector<double>> train_rows;
  train_rows.reserve(train_kernels.size());
  for (const int k : train_kernels) {
    const auto& v = vectors[static_cast<std::size_t>(k)];
    train_rows.emplace_back(v.begin(), v.end());
  }
  scaler.fit(train_rows);

  std::vector<std::vector<float>> scaled;
  scaled.reserve(vectors.size());
  for (const auto& v : vectors) {
    const std::vector<double> row(v.begin(), v.end());
    const std::vector<double> transformed = scaler.transform(row);
    scaled.emplace_back(transformed.begin(), transformed.end());
  }
  return scaled;
}

// ---------------------------------------------------------------------------
// OpenMP

OmpExperiment::OmpExperiment(const dataset::OmpDataset& data, MgaModelConfig model_config,
                             TrainConfig train_config)
    : data_(data), model_config_(model_config), train_config_(train_config) {
  model_config_.num_classes = data.num_classes();
  model_config_.extra_dim = hwsim::PapiCounters::kNumSelected;
  model_config_.dae.input_dim = data.vectors.empty() ? 0 : data.vectors.front().size();
}

std::vector<float> OmpExperiment::counter_features(const dataset::OmpSample& sample) const {
  // log1p compresses the decades spanned by the 30 input sizes; min-max then
  // lands in [0,1] as §3.2 prescribes for the fused feature vector.
  const auto raw = sample.counters.selected();
  std::vector<double> logged(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) logged[i] = std::log1p(raw[i]);
  const std::vector<double> scaled = counter_scaler_.transform(logged);
  return {scaled.begin(), scaled.end()};
}

OmpEvalResult OmpExperiment::run(const std::vector<int>& train_samples,
                                 const std::vector<int>& val_samples) {
  MGA_CHECK(!train_samples.empty() && !val_samples.empty());
  util::Rng rng(train_config_.seed);

  // --- feature preparation (train statistics only) --------------------------
  {
    std::vector<std::vector<double>> rows;
    rows.reserve(train_samples.size());
    for (const int index : train_samples) {
      const auto raw = data_.samples[static_cast<std::size_t>(index)].counters.selected();
      std::vector<double> logged(raw.size());
      for (std::size_t i = 0; i < raw.size(); ++i) logged[i] = std::log1p(raw[i]);
      rows.push_back(std::move(logged));
    }
    counter_scaler_.fit(rows);
  }

  std::vector<int> train_kernels;
  {
    std::unordered_set<int> seen;
    for (const int index : train_samples)
      if (seen.insert(data_.samples[static_cast<std::size_t>(index)].kernel_id).second)
        train_kernels.push_back(data_.samples[static_cast<std::size_t>(index)].kernel_id);
  }
  const std::vector<std::vector<float>> scaled_vectors =
      rank_scaled_vectors(data_.vectors, train_kernels);

  // --- model ----------------------------------------------------------------
  MgaModel model(rng, model_config_);
  {
    std::vector<std::vector<float>> dae_rows;
    dae_rows.reserve(train_kernels.size());
    for (const int k : train_kernels)
      dae_rows.push_back(scaled_vectors[static_cast<std::size_t>(k)]);
    model.pretrain_dae(dae_rows, rng);
  }

  nn::AdamWConfig opt_config;
  opt_config.learning_rate = train_config_.learning_rate;
  opt_config.weight_decay = train_config_.weight_decay;
  nn::AdamW optimizer(model.trainable_parameters(), opt_config);
  auto params = model.trainable_parameters();

  // --- training: one optimizer step per kernel group ------------------------
  auto groups = group_by_kernel(train_samples, data_.samples);
  std::vector<int> kernel_order;
  for (const auto& [kernel, _] : groups) kernel_order.push_back(kernel);

  double train_accuracy = 0.0;
  for (int epoch = 0; epoch < train_config_.epochs; ++epoch) {
    rng.shuffle(kernel_order);
    std::size_t correct = 0;
    std::size_t total = 0;
    for (const int kernel : kernel_order) {
      const auto& members = groups[kernel];
      std::vector<std::vector<float>> extra;
      std::vector<int> labels;
      extra.reserve(members.size());
      for (const int index : members) {
        const auto& sample = data_.samples[static_cast<std::size_t>(index)];
        extra.push_back(counter_features(sample));
        labels.push_back(sample.label);
      }
      const nn::Tensor logits = model.forward_group(
          data_.graphs[static_cast<std::size_t>(kernel)],
          scaled_vectors[static_cast<std::size_t>(kernel)], extra, members.size());
      nn::Tensor loss = nn::softmax_cross_entropy(logits, labels);
      optimizer.zero_grad();
      loss.backward();
      nn::clip_grad_norm(params, train_config_.grad_clip);
      optimizer.step();

      const std::vector<int> predictions = nn::argmax_rows(logits);
      for (std::size_t i = 0; i < predictions.size(); ++i)
        if (predictions[i] == labels[i]) ++correct;
      total += predictions.size();
    }
    train_accuracy = static_cast<double>(correct) / static_cast<double>(total);
  }

  // --- validation -----------------------------------------------------------
  OmpEvalResult result;
  result.train_accuracy = train_accuracy;
  auto val_groups = group_by_kernel(val_samples, data_.samples);
  for (const auto& [kernel, members] : val_groups) {
    std::vector<std::vector<float>> extra;
    extra.reserve(members.size());
    for (const int index : members)
      extra.push_back(counter_features(data_.samples[static_cast<std::size_t>(index)]));
    const nn::Tensor logits = model.forward_group(
        data_.graphs[static_cast<std::size_t>(kernel)],
        scaled_vectors[static_cast<std::size_t>(kernel)], extra, members.size());
    const std::vector<int> predictions = nn::argmax_rows(logits);
    for (std::size_t i = 0; i < members.size(); ++i) {
      result.sample_indices.push_back(members[i]);
      result.predicted.push_back(predictions[i]);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Device mapping

DeviceMappingExperiment::DeviceMappingExperiment(const dataset::OclDataset& data,
                                                 MgaModelConfig model_config,
                                                 TrainConfig train_config)
    : data_(data), model_config_(model_config), train_config_(train_config) {
  model_config_.num_classes = 2;
  model_config_.extra_dim = 2;  // transfer size, workgroup size
  model_config_.dae.input_dim = data.vectors.empty() ? 0 : data.vectors.front().size();
}

std::vector<float> DeviceMappingExperiment::size_features(
    const dataset::OclSample& sample) const {
  const std::vector<double> raw = {std::log(sample.transfer_bytes),
                                   std::log2(static_cast<double>(sample.workgroup_size))};
  const std::vector<double> scaled = size_scaler_.transform(raw);
  return {scaled.begin(), scaled.end()};
}

DeviceMappingResult DeviceMappingExperiment::run(const std::vector<int>& train_samples,
                                                 const std::vector<int>& val_samples) {
  MGA_CHECK(!train_samples.empty() && !val_samples.empty());
  util::Rng rng(train_config_.seed);

  {
    std::vector<std::vector<double>> rows;
    rows.reserve(train_samples.size());
    for (const int index : train_samples) {
      const auto& sample = data_.samples[static_cast<std::size_t>(index)];
      rows.push_back({std::log(sample.transfer_bytes),
                      std::log2(static_cast<double>(sample.workgroup_size))});
    }
    size_scaler_.fit(rows);
  }

  std::vector<int> train_kernels;
  {
    std::unordered_set<int> seen;
    for (const int index : train_samples)
      if (seen.insert(data_.samples[static_cast<std::size_t>(index)].kernel_id).second)
        train_kernels.push_back(data_.samples[static_cast<std::size_t>(index)].kernel_id);
  }
  const std::vector<std::vector<float>> scaled_vectors =
      rank_scaled_vectors(data_.vectors, train_kernels);

  MgaModel model(rng, model_config_);
  {
    std::vector<std::vector<float>> dae_rows;
    for (const int k : train_kernels)
      dae_rows.push_back(scaled_vectors[static_cast<std::size_t>(k)]);
    model.pretrain_dae(dae_rows, rng);
  }

  nn::AdamWConfig opt_config;
  opt_config.learning_rate = train_config_.learning_rate;
  opt_config.weight_decay = train_config_.weight_decay;
  nn::AdamW optimizer(model.trainable_parameters(), opt_config);
  auto params = model.trainable_parameters();

  auto groups = group_by_kernel(train_samples, data_.samples);
  std::vector<int> kernel_order;
  for (const auto& [kernel, _] : groups) kernel_order.push_back(kernel);

  for (int epoch = 0; epoch < train_config_.epochs; ++epoch) {
    rng.shuffle(kernel_order);
    for (const int kernel : kernel_order) {
      const auto& members = groups[kernel];
      std::vector<std::vector<float>> extra;
      std::vector<int> labels;
      for (const int index : members) {
        const auto& sample = data_.samples[static_cast<std::size_t>(index)];
        extra.push_back(size_features(sample));
        labels.push_back(sample.label);
      }
      const nn::Tensor logits = model.forward_group(
          data_.graphs[static_cast<std::size_t>(kernel)],
          scaled_vectors[static_cast<std::size_t>(kernel)], extra, members.size());
      nn::Tensor loss = nn::softmax_cross_entropy(logits, labels);
      optimizer.zero_grad();
      loss.backward();
      nn::clip_grad_norm(params, train_config_.grad_clip);
      optimizer.step();
    }
  }

  DeviceMappingResult result;
  auto val_groups = group_by_kernel(val_samples, data_.samples);
  for (const auto& [kernel, members] : val_groups) {
    std::vector<std::vector<float>> extra;
    for (const int index : members)
      extra.push_back(size_features(data_.samples[static_cast<std::size_t>(index)]));
    const nn::Tensor logits = model.forward_group(
        data_.graphs[static_cast<std::size_t>(kernel)],
        scaled_vectors[static_cast<std::size_t>(kernel)], extra, members.size());
    const std::vector<int> predictions = nn::argmax_rows(logits);
    for (std::size_t i = 0; i < members.size(); ++i) {
      result.sample_indices.push_back(members[i]);
      result.predicted.push_back(predictions[i]);
    }
  }
  return result;
}

}  // namespace mga::core
