// The MGA multimodal model (§3): heterogeneous GNN over the PROGRAML graph
// modality + denoising autoencoder over the IR2Vec vector modality, late-
// fused with experiment-specific dynamic features (performance counters for
// OpenMP, transfer/workgroup sizes for OpenCL) into a one-hidden-layer MLP
// classifier over runtime configurations.
//
// Ablation switches reproduce the paper's unimodal and static/dynamic-only
// baselines: PROGRAML-only (use_vector=false), IR2Vec-only (use_graph=false),
// static-only (use_extra=false), dynamic-only (both static modalities off).
#pragma once

#include "models/dae.hpp"
#include "models/gnn.hpp"
#include "programl/graph.hpp"

namespace mga::core {

struct MgaModelConfig {
  bool use_graph = true;
  bool use_vector = true;
  bool use_extra = true;
  /// Ablation: bypass the DAE and feed the (rank-scaled) IR2Vec vector into
  /// the fusion MLP directly (the "no autoencoder" variant of §3.2's choice).
  bool vector_passthrough = false;
  std::size_t extra_dim = 5;
  std::size_t mlp_hidden = 64;  // single hidden layer (§6: "very shallow")
  std::size_t num_classes = 8;
  models::HeteroGnnConfig gnn;
  models::DaeConfig dae;
};

class MgaModel {
 public:
  MgaModel(util::Rng& rng, MgaModelConfig config);

  /// Self-supervised pretraining of the vector modality (no-op when the
  /// vector modality is disabled). `rows` must be Gaussian-rank scaled.
  void pretrain_dae(const std::vector<std::vector<float>>& rows, util::Rng& rng);

  /// Logits for a group of samples sharing one kernel. The static modalities
  /// are evaluated once and broadcast across the group — the grouped-batching
  /// scheme described in DESIGN.md §5. `extra_rows` is [group_size x
  /// extra_dim] (ignored but size-checked when use_extra is false).
  [[nodiscard]] nn::Tensor forward_group(const programl::ProgramGraph& graph,
                                         const std::vector<float>& vector,
                                         const std::vector<std::vector<float>>& extra_rows,
                                         std::size_t group_size) const;

  /// Record the full grouped forward into an op graph: the runtime-plan
  /// capture of `forward_group`, honoring the same modality switches. The
  /// graph/vector/extra inputs and the group size are bound at execute time.
  [[nodiscard]] runtime::ValueId capture_forward_group(runtime::GraphBuilder& g) const;

  /// Trainable parameters: GNN + fusion MLP. The DAE is pretrained and then
  /// frozen (self-supervised stage), so it is excluded here.
  [[nodiscard]] std::vector<nn::Tensor> trainable_parameters() const;

  [[nodiscard]] const MgaModelConfig& config() const noexcept { return config_; }

 private:
  MgaModelConfig config_;
  std::unique_ptr<models::HeteroGnn> gnn_;
  std::unique_ptr<models::DenoisingAutoencoder> dae_;
  nn::Linear fusion_hidden_;
  nn::Linear fusion_out_;
};

}  // namespace mga::core
