// MgaTuner — the library's user-facing facade.
//
// Wraps the full §3 pipeline behind three calls:
//
//   auto tuner = MgaTuner::train(MgaTunerOptions{});     // or load(path)
//   hwsim::OmpConfig cfg = tuner.tune(spec, input_bytes); // 1 profiling run
//   tuner.save(path);                                     // reuse later
//
// `tune` performs exactly what the paper's inference does: profile the loop
// once at the default configuration to collect the five counters, push the
// kernel's PROGRAML graph and IR2Vec vector through the trained multimodal
// model, and return the predicted configuration.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/experiment.hpp"

namespace mga::runtime {
class CompiledForward;
}

namespace mga::core {

/// Cacheable handle onto the static (per-kernel) half of the inference
/// pipeline: the PROGRAML graph, the rank-scaled IR2Vec vector, and the
/// workload descriptor, plus stable hashes. Extracting one is the expensive
/// part of `tune`; a handle stays valid for the lifetime of the tuner that
/// produced it (the scaled vector is fitted against that tuner's training
/// corpus) and can be reused across any number of input sizes — the memo
/// the serve-layer FeatureCache stores.
struct KernelFeatures {
  std::uint64_t ir_hash = 0;           // FNV-1a of the printed kernel IR
  std::uint64_t graph_fingerprint = 0; // structural hash of the PROGRAML graph
  programl::ProgramGraph graph;
  std::vector<float> scaled_vector;    // Gaussian-rank scaled IR2Vec vector
  hwsim::KernelWorkload workload;
};

/// One request of the batched `tune_many` path. When `counters` is set the
/// profiling run is skipped (the caller already collected them).
struct TuneJob {
  corpus::KernelSpec kernel;
  double input_bytes = 0.0;
  std::optional<hwsim::PapiCounters> counters;
};

/// Knobs of the online fine-tuning pass (`MgaTuner::fine_tune`): a short,
/// warm-started AdamW run over served-observation rows. Defaults are sized
/// for "adapt a deployed model to a drifted slice without unlearning the
/// rest": enough epochs at near-training learning rate to re-converge on the
/// combined (drifted + replayed background) rows — half measures fix the
/// slice but leave the background mid-migration — and no weight decay (the
/// pretrained weights are the regularizer).
struct FineTuneOptions {
  int epochs = 60;
  double learning_rate = 2e-3;
  double weight_decay = 0.0;
  double grad_clip = 5.0;
  /// Seed of the per-epoch kernel-order shuffle; fine-tuning is fully
  /// deterministic given (model state, rows, options).
  std::uint64_t seed = 1234;
};

/// What a fine-tuning pass did (loss is mean grouped cross-entropy).
struct FineTuneReport {
  std::size_t kernels = 0;
  std::size_t samples = 0;
  double initial_loss = 0.0;  // first epoch's mean loss
  double final_loss = 0.0;    // last epoch's mean loss
};

struct MgaTunerOptions {
  hwsim::MachineConfig machine = hwsim::comet_lake();
  /// Configuration space; empty = thread space of `machine`.
  std::vector<hwsim::OmpConfig> space;
  /// Training corpus; empty = the full 45-loop OpenMP suite.
  std::vector<corpus::KernelSpec> training_kernels;
  /// Training input sizes; empty = the paper's 30 sizes.
  std::vector<double> input_sizes;
  MgaModelConfig model;
  TrainConfig training;
};

class MgaTuner {
 public:
  /// Build the dataset, pretrain the DAE and train the fused model.
  [[nodiscard]] static MgaTuner train(MgaTunerOptions options = {});

  /// Predict the best configuration for a kernel at an input size. Profiles
  /// the kernel once (simulated) at the default configuration for counters.
  [[nodiscard]] hwsim::OmpConfig tune(const corpus::KernelSpec& kernel,
                                      double input_bytes) const;

  /// Same prediction from caller-supplied counters: no profiling run. The
  /// input size enters the model only through the counters, so this is all a
  /// caller that already profiled (or memoized a profile) needs to provide.
  [[nodiscard]] hwsim::OmpConfig tune(const corpus::KernelSpec& kernel,
                                      const hwsim::PapiCounters& counters) const;

  /// Batched tuning: jobs are grouped by kernel so the static modalities are
  /// extracted and forwarded once per kernel (`MgaModel::forward_group`).
  /// Results are returned in job order and are bit-identical to calling
  /// `tune` per job.
  [[nodiscard]] std::vector<hwsim::OmpConfig> tune_many(const std::vector<TuneJob>& jobs) const;

  // --- serve-path building blocks (used by mga::serve; composable) ---------

  /// The expensive static half of `tune`: generate the kernel, build both
  /// modality representations and rank-scale the vector against the training
  /// corpus. Deterministic, and safe to call from concurrent threads.
  [[nodiscard]] KernelFeatures extract_features(const corpus::KernelSpec& kernel) const;

  /// One simulated profiling run at the default configuration (the paper's
  /// counter-collection step).
  [[nodiscard]] hwsim::PapiCounters profile_counters(const hwsim::KernelWorkload& workload,
                                                     double input_bytes) const;

  /// Inference from pre-extracted features + counters (no generation, no
  /// profiling). `tune(kernel, input)` ≡ `tune_cached(extract_features(kernel),
  /// profile_counters(workload, input))`, bit for bit.
  [[nodiscard]] hwsim::OmpConfig tune_cached(const KernelFeatures& features,
                                             const hwsim::PapiCounters& counters) const;

  /// Grouped inference: one `forward_group` over all counter rows sharing
  /// `features`. Row i equals `tune_cached(features, counters[i])` bitwise.
  [[nodiscard]] std::vector<hwsim::OmpConfig> tune_group(
      const KernelFeatures& features,
      const std::vector<hwsim::PapiCounters>& counters) const;

  /// The class indices behind `tune_group`: row i of the grouped forward's
  /// argmax, i.e. `space()[predict_labels(...)[i]] == tune_group(...)[i]`.
  /// The serve/retrain layers use the index form to score predictions
  /// against per-configuration runtime tables without a config->index scan.
  [[nodiscard]] std::vector<int> predict_labels(
      const KernelFeatures& features,
      const std::vector<hwsim::PapiCounters>& counters) const;

  /// Compile this tuner's grouped forward into an executable runtime plan
  /// (capture → rewrite passes → memory planning). The plan aliases the live
  /// model weights: it follows `fine_tune` automatically and stays pinned to
  /// THIS tuner's parameters (a `clone()` needs its own compile). The result
  /// is immutable, thread-safe, and bit-identical to `predict_labels`.
  [[nodiscard]] std::shared_ptr<const runtime::CompiledForward> compile_forward() const;

  // --- online retraining building blocks (used by mga::serve::retrain) -----

  /// Deep copy: identical options, dataset statistics and parameters, fully
  /// independent state. The copy's predictions are bit-identical to this
  /// tuner's until one of them is fine-tuned — the warm start of a retrain
  /// candidate that must not touch the serving model.
  [[nodiscard]] MgaTuner clone() const;

  /// Warm-started fine-tuning on observation rows in the dataset row format:
  /// `samples[i].kernel_id` indexes `kernels`, `label` is the oracle class in
  /// `space()`, `counters` the profiled feature row. Runs AdamW over
  /// `trainable_parameters()` with grouped-by-kernel batches (the same scheme
  /// as initial training); the DAE stays frozen. Deterministic.
  FineTuneReport fine_tune(const std::vector<corpus::KernelSpec>& kernels,
                           const std::vector<dataset::OmpSample>& samples,
                           const FineTuneOptions& options = {});

  /// Achieved speedup of the tuned configuration over the default (one extra
  /// simulated run; useful for reporting).
  [[nodiscard]] double speedup_over_default(const corpus::KernelSpec& kernel,
                                            double input_bytes) const;

  /// Persist / restore the trained parameters (scalers and dataset statistics
  /// are re-derived from the training options, which are stored alongside).
  void save(const std::string& path) const;
  [[nodiscard]] static MgaTuner load(const std::string& path, MgaTunerOptions options = {});

  [[nodiscard]] const hwsim::MachineConfig& machine() const noexcept;
  [[nodiscard]] const std::vector<hwsim::OmpConfig>& space() const noexcept;

  MgaTuner(MgaTuner&&) noexcept;
  MgaTuner& operator=(MgaTuner&&) noexcept;
  ~MgaTuner();

  /// Opaque implementation record (public so the out-of-line builders in
  /// tuner.cpp can construct it; clients never see the definition).
  struct State;

 private:
  explicit MgaTuner(std::unique_ptr<State> state);
  std::unique_ptr<State> state_;
};

}  // namespace mga::core
