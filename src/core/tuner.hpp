// MgaTuner — the library's user-facing facade.
//
// Wraps the full §3 pipeline behind three calls:
//
//   auto tuner = MgaTuner::train(MgaTunerOptions{});     // or load(path)
//   hwsim::OmpConfig cfg = tuner.tune(spec, input_bytes); // 1 profiling run
//   tuner.save(path);                                     // reuse later
//
// `tune` performs exactly what the paper's inference does: profile the loop
// once at the default configuration to collect the five counters, push the
// kernel's PROGRAML graph and IR2Vec vector through the trained multimodal
// model, and return the predicted configuration.
#pragma once

#include <memory>
#include <string>

#include "core/experiment.hpp"

namespace mga::core {

struct MgaTunerOptions {
  hwsim::MachineConfig machine = hwsim::comet_lake();
  /// Configuration space; empty = thread space of `machine`.
  std::vector<hwsim::OmpConfig> space;
  /// Training corpus; empty = the full 45-loop OpenMP suite.
  std::vector<corpus::KernelSpec> training_kernels;
  /// Training input sizes; empty = the paper's 30 sizes.
  std::vector<double> input_sizes;
  MgaModelConfig model;
  TrainConfig training;
};

class MgaTuner {
 public:
  /// Build the dataset, pretrain the DAE and train the fused model.
  [[nodiscard]] static MgaTuner train(MgaTunerOptions options = {});

  /// Predict the best configuration for a kernel at an input size. Profiles
  /// the kernel once (simulated) at the default configuration for counters.
  [[nodiscard]] hwsim::OmpConfig tune(const corpus::KernelSpec& kernel,
                                      double input_bytes) const;

  /// Achieved speedup of the tuned configuration over the default (one extra
  /// simulated run; useful for reporting).
  [[nodiscard]] double speedup_over_default(const corpus::KernelSpec& kernel,
                                            double input_bytes) const;

  /// Persist / restore the trained parameters (scalers and dataset statistics
  /// are re-derived from the training options, which are stored alongside).
  void save(const std::string& path) const;
  [[nodiscard]] static MgaTuner load(const std::string& path, MgaTunerOptions options = {});

  [[nodiscard]] const hwsim::MachineConfig& machine() const noexcept;
  [[nodiscard]] const std::vector<hwsim::OmpConfig>& space() const noexcept;

  MgaTuner(MgaTuner&&) noexcept;
  MgaTuner& operator=(MgaTuner&&) noexcept;
  ~MgaTuner();

  /// Opaque implementation record (public so the out-of-line builders in
  /// tuner.cpp can construct it; clients never see the definition).
  struct State;

 private:
  explicit MgaTuner(std::unique_ptr<State> state);
  std::unique_ptr<State> state_;
};

}  // namespace mga::core
