#include "core/mga_model.hpp"

#include "util/check.hpp"

namespace mga::core {

namespace {

[[nodiscard]] std::size_t fusion_input_dim(const MgaModelConfig& c) {
  std::size_t dim = 0;
  if (c.use_graph) dim += c.gnn.output_dim;
  if (c.use_vector) dim += c.vector_passthrough ? c.dae.input_dim : c.dae.code_dim;
  if (c.use_extra) dim += c.extra_dim;
  MGA_CHECK_MSG(dim > 0, "MgaModel: all modalities disabled");
  return dim;
}

}  // namespace

MgaModel::MgaModel(util::Rng& rng, MgaModelConfig config)
    : config_(config),
      fusion_hidden_(rng, fusion_input_dim(config), config.mlp_hidden),
      fusion_out_(rng, config.mlp_hidden, config.num_classes) {
  if (config_.use_graph) gnn_ = std::make_unique<models::HeteroGnn>(rng, config_.gnn);
  if (config_.use_vector && !config_.vector_passthrough)
    dae_ = std::make_unique<models::DenoisingAutoencoder>(rng, config_.dae);
}

void MgaModel::pretrain_dae(const std::vector<std::vector<float>>& rows, util::Rng& rng) {
  if (dae_ != nullptr && rows.size() >= 2) dae_->pretrain(rows, rng);
}

nn::Tensor MgaModel::forward_group(const programl::ProgramGraph& graph,
                                   const std::vector<float>& vector,
                                   const std::vector<std::vector<float>>& extra_rows,
                                   std::size_t group_size) const {
  MGA_CHECK(group_size > 0);

  // Static modalities: one forward per kernel, late-fused.
  nn::Tensor shared;
  if (config_.use_graph) {
    shared = gnn_->forward(graph);
  }
  if (config_.use_vector) {
    const nn::Tensor code =
        config_.vector_passthrough
            ? nn::Tensor::from_data(std::vector<float>(vector), 1, vector.size())
            : dae_->encode(vector).detach();  // frozen encoder
    shared = shared.defined() ? nn::concat_cols(shared, code) : code;
  }

  // Broadcast across the group and append per-sample dynamic features.
  nn::Tensor batch;
  if (shared.defined()) batch = nn::row_repeat(shared, group_size);
  if (config_.use_extra) {
    MGA_CHECK_MSG(extra_rows.size() == group_size, "extra feature row count mismatch");
    std::vector<float> flat;
    flat.reserve(group_size * config_.extra_dim);
    for (const auto& row : extra_rows) {
      MGA_CHECK_MSG(row.size() == config_.extra_dim, "extra feature width mismatch");
      flat.insert(flat.end(), row.begin(), row.end());
    }
    const nn::Tensor extra =
        nn::Tensor::from_data(std::move(flat), group_size, config_.extra_dim);
    batch = batch.defined() ? nn::concat_cols(batch, extra) : extra;
  }

  return fusion_out_.forward(nn::relu(fusion_hidden_.forward(batch)));
}

runtime::ValueId MgaModel::capture_forward_group(runtime::GraphBuilder& g) const {
  using runtime::ValueId;
  // Mirrors forward_group statement for statement: static modalities once,
  // broadcast across the group, per-sample extras appended.
  bool have_shared = false;
  ValueId shared = 0;
  if (config_.use_graph) {
    shared = gnn_->capture(g);
    have_shared = true;
  }
  if (config_.use_vector) {
    const ValueId vector = g.input_vector(config_.dae.input_dim);
    const ValueId code =
        config_.vector_passthrough ? vector : dae_->capture_encode(g, vector);
    shared = have_shared ? g.concat_cols(shared, code) : code;
    have_shared = true;
  }
  bool have_batch = false;
  ValueId batch = 0;
  if (have_shared) {
    batch = g.row_repeat(shared, runtime::Sym::kGroup);
    have_batch = true;
  }
  if (config_.use_extra) {
    const ValueId extra = g.input_extra(config_.extra_dim);
    batch = have_batch ? g.concat_cols(batch, extra) : extra;
  }
  return fusion_out_.capture(g, g.relu(fusion_hidden_.capture(g, batch)));
}

std::vector<nn::Tensor> MgaModel::trainable_parameters() const {
  std::vector<nn::Tensor> params;
  if (gnn_ != nullptr) nn::collect(params, gnn_->parameters());
  nn::collect(params, fusion_hidden_.parameters());
  nn::collect(params, fusion_out_.parameters());
  return params;
}

}  // namespace mga::core
