#include "core/tuner.hpp"

#include <bit>
#include <chrono>
#include <cmath>
#include <unordered_map>

#include "ir/printer.hpp"
#include "ir2vec/encoder.hpp"
#include "nn/serialize.hpp"
#include "programl/builder.hpp"
#include "runtime/compiled.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mga::core {

struct MgaTuner::State {
  MgaTunerOptions options;
  dataset::OmpDataset data;
  dataset::MinMaxScaler counter_scaler;
  std::vector<std::vector<float>> scaled_vectors;
  std::unique_ptr<MgaModel> model;

  [[nodiscard]] std::vector<float> counter_features(const hwsim::PapiCounters& counters) const {
    const auto raw = counters.selected();
    std::vector<double> logged(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) logged[i] = std::log1p(raw[i]);
    const std::vector<double> scaled = counter_scaler.transform(logged);
    return {scaled.begin(), scaled.end()};
  }
};

namespace {

void normalize_options(MgaTunerOptions& options) {
  if (options.space.empty()) options.space = dataset::thread_space(options.machine);
  if (options.training_kernels.empty()) options.training_kernels = corpus::openmp_suite();
  if (options.input_sizes.empty()) options.input_sizes = dataset::input_sizes_30();
}

std::unique_ptr<MgaTuner::State> build_state(MgaTunerOptions options) {
  normalize_options(options);
  auto state = std::make_unique<MgaTuner::State>();
  state->options = options;
  state->data = dataset::build_omp_dataset(options.training_kernels, options.machine,
                                           options.space, options.input_sizes);

  // Feature statistics over the whole training corpus.
  std::vector<std::vector<double>> rows;
  rows.reserve(state->data.samples.size());
  for (const auto& sample : state->data.samples) {
    const auto raw = sample.counters.selected();
    std::vector<double> logged(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) logged[i] = std::log1p(raw[i]);
    rows.push_back(std::move(logged));
  }
  state->counter_scaler.fit(rows);

  std::vector<int> all_kernels;
  for (std::size_t k = 0; k < state->data.kernels.size(); ++k)
    all_kernels.push_back(static_cast<int>(k));
  state->scaled_vectors = rank_scaled_vectors(state->data.vectors, all_kernels);

  MgaModelConfig model_config = options.model;
  model_config.num_classes = state->data.num_classes();
  model_config.extra_dim = hwsim::PapiCounters::kNumSelected;
  model_config.dae.input_dim = state->data.vectors.front().size();
  util::Rng rng(options.training.seed);
  state->model = std::make_unique<MgaModel>(rng, model_config);
  return state;
}

/// Named parameter list of a model (order defines the names).
nn::NamedTensors named_parameters(const MgaModel& model) {
  nn::NamedTensors named;
  const auto params = model.trainable_parameters();
  for (std::size_t i = 0; i < params.size(); ++i)
    named.emplace_back("p" + std::to_string(i), params[i]);
  return named;
}

}  // namespace

MgaTuner MgaTuner::train(MgaTunerOptions options) {
  auto state = build_state(std::move(options));

  // Same training procedure as OmpExperiment (grouped-by-kernel batches,
  // AdamW, frozen pretrained DAE), but over the whole corpus: the facade's
  // contract is "train on everything, deploy on unseen loops".
  util::Rng rng(state->options.training.seed);
  {
    std::vector<std::vector<float>> dae_rows = state->scaled_vectors;
    state->model->pretrain_dae(dae_rows, rng);
  }
  nn::AdamWConfig opt_config;
  opt_config.learning_rate = state->options.training.learning_rate;
  opt_config.weight_decay = state->options.training.weight_decay;
  nn::AdamW optimizer(state->model->trainable_parameters(), opt_config);
  auto params = state->model->trainable_parameters();

  std::vector<int> kernel_order;
  for (std::size_t k = 0; k < state->data.kernels.size(); ++k)
    kernel_order.push_back(static_cast<int>(k));

  const auto inputs_per_kernel = state->options.input_sizes.size();
  for (int epoch = 0; epoch < state->options.training.epochs; ++epoch) {
    rng.shuffle(kernel_order);
    for (const int kernel : kernel_order) {
      std::vector<std::vector<float>> extra;
      std::vector<int> labels;
      for (std::size_t i = 0; i < inputs_per_kernel; ++i) {
        const auto& sample =
            state->data.samples[static_cast<std::size_t>(kernel) * inputs_per_kernel + i];
        extra.push_back(state->counter_features(sample.counters));
        labels.push_back(sample.label);
      }
      const nn::Tensor logits = state->model->forward_group(
          state->data.graphs[static_cast<std::size_t>(kernel)],
          state->scaled_vectors[static_cast<std::size_t>(kernel)], extra, extra.size());
      nn::Tensor loss = nn::softmax_cross_entropy(logits, labels);
      optimizer.zero_grad();
      loss.backward();
      nn::clip_grad_norm(params, state->options.training.grad_clip);
      optimizer.step();
    }
  }
  return MgaTuner(std::move(state));
}

KernelFeatures MgaTuner::extract_features(const corpus::KernelSpec& kernel) const {
  // Static representations for the (possibly unseen) kernel.
  const corpus::GeneratedKernel generated = corpus::generate(kernel);
  KernelFeatures features;
  features.workload = generated.workload;
  features.ir_hash = util::fnv1a(ir::to_string(*generated.module));
  features.graph = programl::build_graph(*generated.module);
  features.graph_fingerprint = features.graph.fingerprint();

  const ir2vec::Encoder encoder;
  std::vector<float> vector = encoder.encode_module(*generated.module);
  // Rank-scale with the training distribution: reuse the fitted transform
  // by appending the kernel to the stored corpus statistics.
  std::vector<int> train_ids;
  for (std::size_t k = 0; k < state_->data.kernels.size(); ++k)
    train_ids.push_back(static_cast<int>(k));
  auto vectors = state_->data.vectors;
  vectors.push_back(std::move(vector));
  features.scaled_vector = rank_scaled_vectors(vectors, train_ids).back();
  return features;
}

hwsim::PapiCounters MgaTuner::profile_counters(const hwsim::KernelWorkload& workload,
                                               double input_bytes) const {
  // One profiling run at the default configuration (the paper's two-run
  // budget; one run suffices when the system reports all five counters).
  return hwsim::cpu_execute(workload, state_->options.machine, input_bytes,
                            hwsim::default_config(state_->options.machine))
      .counters;
}

hwsim::OmpConfig MgaTuner::tune_cached(const KernelFeatures& features,
                                       const hwsim::PapiCounters& counters) const {
  return tune_group(features, {counters}).front();
}

std::vector<int> MgaTuner::predict_labels(
    const KernelFeatures& features, const std::vector<hwsim::PapiCounters>& counters) const {
  MGA_CHECK_MSG(!counters.empty(), "predict_labels: empty counter batch");
  std::vector<std::vector<float>> extra;
  extra.reserve(counters.size());
  for (const auto& c : counters) extra.push_back(state_->counter_features(c));
  const nn::Tensor logits = state_->model->forward_group(
      features.graph, features.scaled_vector, extra, extra.size());
  return nn::argmax_rows(logits);
}

std::shared_ptr<const runtime::CompiledForward> MgaTuner::compile_forward() const {
  const auto start = std::chrono::steady_clock::now();
  runtime::GraphBuilder builder;
  const runtime::ValueId output = state_->model->capture_forward_group(builder);
  runtime::Graph graph = std::move(builder).finish(output);
  runtime::CompileInfo info;
  info.ops_before = graph.size();
  info.passes = runtime::run_default_passes(graph);
  info.ops_after = graph.size();
  const MgaModelConfig& mc = state_->model->config();
  runtime::ForwardSpec spec;
  spec.use_graph = mc.use_graph;
  spec.use_vector = mc.use_vector;
  spec.use_extra = mc.use_extra;
  spec.vector_dim = mc.dae.input_dim;
  spec.extra_dim = mc.extra_dim;
  spec.num_classes = mc.num_classes;
  auto compiled = std::make_shared<runtime::CompiledForward>(
      std::move(graph), state_->counter_scaler, spec, info);
  compiled->set_compile_ms(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count());
  return compiled;
}

std::vector<hwsim::OmpConfig> MgaTuner::tune_group(
    const KernelFeatures& features, const std::vector<hwsim::PapiCounters>& counters) const {
  std::vector<hwsim::OmpConfig> configs;
  configs.reserve(counters.size());
  for (const int predicted : predict_labels(features, counters))
    configs.push_back(state_->options.space[static_cast<std::size_t>(predicted)]);
  return configs;
}

MgaTuner MgaTuner::clone() const {
  auto state = std::make_unique<State>();
  state->options = state_->options;
  state->data = state_->data;
  state->counter_scaler = state_->counter_scaler;
  state->scaled_vectors = state_->scaled_vectors;
  // Same recipe as `load`: rebuild the model (weight init from the training
  // seed), rerun the deterministic DAE pretraining, then copy the trained
  // parameters over. Only `trainable_parameters` need copying — the DAE is
  // a pure function of (seed, scaled vectors) and never fine-tuned.
  {
    util::Rng rng(state->options.training.seed);
    state->model = std::make_unique<MgaModel>(rng, state_->model->config());
  }
  util::Rng rng(state->options.training.seed);
  state->model->pretrain_dae(state->scaled_vectors, rng);
  const nn::NamedTensors source = named_parameters(*state_->model);
  nn::NamedTensors target = named_parameters(*state->model);
  nn::restore_into(source, target);
  return MgaTuner(std::move(state));
}

FineTuneReport MgaTuner::fine_tune(const std::vector<corpus::KernelSpec>& kernels,
                                   const std::vector<dataset::OmpSample>& samples,
                                   const FineTuneOptions& options) {
  MGA_CHECK_MSG(!kernels.empty(), "fine_tune: no kernels");
  MGA_CHECK_MSG(!samples.empty(), "fine_tune: no samples");
  MGA_CHECK_MSG(options.epochs > 0, "fine_tune: epochs must be positive");

  // Group sample indices by kernel — fine-tuning batches by kernel exactly
  // like initial training, so the static modalities are forwarded once per
  // kernel per epoch.
  std::vector<std::vector<std::size_t>> by_kernel(kernels.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const int k = samples[i].kernel_id;
    MGA_CHECK_MSG(k >= 0 && static_cast<std::size_t>(k) < kernels.size(),
                  "fine_tune: sample kernel_id out of range");
    MGA_CHECK_MSG(samples[i].label >= 0 &&
                      static_cast<std::size_t>(samples[i].label) < state_->options.space.size(),
                  "fine_tune: sample label outside the configuration space");
    by_kernel[static_cast<std::size_t>(k)].push_back(i);
  }

  std::vector<int> order;
  std::vector<std::optional<KernelFeatures>> features(kernels.size());
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    if (by_kernel[k].empty()) continue;
    features[k] = extract_features(kernels[k]);
    order.push_back(static_cast<int>(k));
  }

  nn::AdamWConfig opt_config;
  opt_config.learning_rate = options.learning_rate;
  opt_config.weight_decay = options.weight_decay;
  nn::AdamW optimizer(state_->model->trainable_parameters(), opt_config);
  auto params = state_->model->trainable_parameters();

  FineTuneReport report;
  report.kernels = order.size();
  report.samples = samples.size();
  util::Rng rng(options.seed);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    for (const int kernel : order) {
      const KernelFeatures& kf = *features[static_cast<std::size_t>(kernel)];
      const std::vector<std::size_t>& members = by_kernel[static_cast<std::size_t>(kernel)];
      std::vector<std::vector<float>> extra;
      std::vector<int> labels;
      extra.reserve(members.size());
      labels.reserve(members.size());
      for (const std::size_t i : members) {
        extra.push_back(state_->counter_features(samples[i].counters));
        labels.push_back(samples[i].label);
      }
      const nn::Tensor logits =
          state_->model->forward_group(kf.graph, kf.scaled_vector, extra, extra.size());
      nn::Tensor loss = nn::softmax_cross_entropy(logits, labels);
      epoch_loss += static_cast<double>(loss.item());
      optimizer.zero_grad();
      loss.backward();
      nn::clip_grad_norm(params, options.grad_clip);
      optimizer.step();
    }
    epoch_loss /= static_cast<double>(order.size());
    if (epoch == 0) report.initial_loss = epoch_loss;
    report.final_loss = epoch_loss;
  }
  return report;
}

hwsim::OmpConfig MgaTuner::tune(const corpus::KernelSpec& kernel, double input_bytes) const {
  const KernelFeatures features = extract_features(kernel);
  return tune_cached(features, profile_counters(features.workload, input_bytes));
}

hwsim::OmpConfig MgaTuner::tune(const corpus::KernelSpec& kernel,
                                const hwsim::PapiCounters& counters) const {
  return tune_cached(extract_features(kernel), counters);
}

namespace {

/// Structural hash of a kernel spec (full-spec equality is confirmed with
/// operator== on bucket collisions).
[[nodiscard]] std::uint64_t spec_hash(const corpus::KernelSpec& spec) {
  std::uint64_t h = util::fnv1a(spec.name);
  h = util::hash_combine(h, util::fnv1a(spec.suite));
  h = util::hash_combine(h, static_cast<std::uint64_t>(spec.family));
  const corpus::FamilyParams& p = spec.params;
  for (const std::uint64_t field :
       {static_cast<std::uint64_t>(p.nest_depth), static_cast<std::uint64_t>(p.arith_chain),
        static_cast<std::uint64_t>(p.arrays), static_cast<std::uint64_t>(p.has_branch),
        static_cast<std::uint64_t>(p.has_reduction),
        static_cast<std::uint64_t>(p.helper_calls), static_cast<std::uint64_t>(p.extern_calls),
        std::bit_cast<std::uint64_t>(p.reuse), std::bit_cast<std::uint64_t>(p.imbalance)})
    h = util::hash_combine(h, field);
  return h;
}

}  // namespace

std::vector<hwsim::OmpConfig> MgaTuner::tune_many(const std::vector<TuneJob>& jobs) const {
  // Group job indices by full kernel spec (generation is deterministic, so
  // equal specs mean equal features — name alone is not enough, two specs
  // may share a name with different params), preserving first-appearance
  // order. Hash buckets keep this O(jobs); equality confirms on collision.
  std::vector<std::vector<std::size_t>> groups;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;  // hash -> group ids
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    std::vector<std::size_t>& bucket = buckets[spec_hash(jobs[j].kernel)];
    std::vector<std::size_t>* group = nullptr;
    for (const std::size_t g : bucket)
      if (jobs[groups[g].front()].kernel == jobs[j].kernel) {
        group = &groups[g];
        break;
      }
    if (group == nullptr) {
      bucket.push_back(groups.size());
      group = &groups.emplace_back();
    }
    group->push_back(j);
  }

  std::vector<hwsim::OmpConfig> results(jobs.size());
  for (const std::vector<std::size_t>& members : groups) {
    const KernelFeatures features = extract_features(jobs[members.front()].kernel);
    std::vector<hwsim::PapiCounters> counters;
    counters.reserve(members.size());
    for (const std::size_t j : members)
      counters.push_back(jobs[j].counters ? *jobs[j].counters
                                          : profile_counters(features.workload,
                                                             jobs[j].input_bytes));
    const std::vector<hwsim::OmpConfig> configs = tune_group(features, counters);
    for (std::size_t i = 0; i < members.size(); ++i) results[members[i]] = configs[i];
  }
  return results;
}

double MgaTuner::speedup_over_default(const corpus::KernelSpec& kernel,
                                      double input_bytes) const {
  const corpus::GeneratedKernel generated = corpus::generate(kernel);
  const hwsim::OmpConfig tuned = tune(kernel, input_bytes);
  const double default_seconds =
      hwsim::cpu_execute(generated.workload, state_->options.machine, input_bytes,
                         hwsim::default_config(state_->options.machine))
          .seconds;
  const double tuned_seconds =
      hwsim::cpu_execute(generated.workload, state_->options.machine, input_bytes, tuned)
          .seconds;
  return default_seconds / tuned_seconds;
}

void MgaTuner::save(const std::string& path) const {
  nn::save_tensors_file(named_parameters(*state_->model), path);
}

MgaTuner MgaTuner::load(const std::string& path, MgaTunerOptions options) {
  auto state = build_state(std::move(options));
  // DAE must match the pretraining the saved model was fused with; rerun the
  // deterministic pretraining, then restore the trained fusion parameters.
  util::Rng rng(state->options.training.seed);
  state->model->pretrain_dae(state->scaled_vectors, rng);
  const nn::NamedTensors stored = nn::load_tensors_file(path);
  nn::NamedTensors target = named_parameters(*state->model);
  nn::restore_into(stored, target);
  return MgaTuner(std::move(state));
}

const hwsim::MachineConfig& MgaTuner::machine() const noexcept {
  return state_->options.machine;
}

const std::vector<hwsim::OmpConfig>& MgaTuner::space() const noexcept {
  return state_->options.space;
}

MgaTuner::MgaTuner(std::unique_ptr<State> state) : state_(std::move(state)) {}
MgaTuner::MgaTuner(MgaTuner&&) noexcept = default;
MgaTuner& MgaTuner::operator=(MgaTuner&&) noexcept = default;
MgaTuner::~MgaTuner() = default;

}  // namespace mga::core
