// Experiment drivers: end-to-end train/evaluate pipelines for the two tasks.
//
// OmpExperiment implements the paper's OpenMP protocol: Gaussian-rank scale
// the IR2Vec vectors and pretrain the DAE on training kernels, log+min-max
// scale the training counters, then train the fused model with AdamW using
// grouped-by-kernel batches, and predict configurations for validation
// samples. DeviceMappingExperiment does the same with (transfer, workgroup)
// sizes as the dynamic features and CPU/GPU as the classes.
#pragma once

#include <optional>

#include "core/mga_model.hpp"
#include "dataset/dataset.hpp"
#include "dataset/scaler.hpp"

namespace mga::core {

struct TrainConfig {
  int epochs = 36;
  double learning_rate = 2.5e-3;
  double weight_decay = 1e-4;
  double grad_clip = 5.0;
  std::uint64_t seed = 42;
};

struct OmpEvalResult {
  std::vector<int> sample_indices;  // validation samples, dataset order
  std::vector<int> predicted;      // chosen config index per sample
  double train_accuracy = 0.0;
};

class OmpExperiment {
 public:
  OmpExperiment(const dataset::OmpDataset& data, MgaModelConfig model_config,
                TrainConfig train_config = {});

  /// Train on `train_samples`, predict for `val_samples` (both index into
  /// data.samples). Kernel-disjointness between the two sets is the caller's
  /// protocol decision (k-fold over kernels, input holdout, ...).
  [[nodiscard]] OmpEvalResult run(const std::vector<int>& train_samples,
                                  const std::vector<int>& val_samples);

 private:
  [[nodiscard]] std::vector<float> counter_features(const dataset::OmpSample& sample) const;

  const dataset::OmpDataset& data_;
  MgaModelConfig model_config_;
  TrainConfig train_config_;
  dataset::MinMaxScaler counter_scaler_;
};

struct DeviceMappingResult {
  std::vector<int> sample_indices;
  std::vector<int> predicted;  // 0 = CPU, 1 = GPU
};

class DeviceMappingExperiment {
 public:
  DeviceMappingExperiment(const dataset::OclDataset& data, MgaModelConfig model_config,
                          TrainConfig train_config = {});

  [[nodiscard]] DeviceMappingResult run(const std::vector<int>& train_samples,
                                        const std::vector<int>& val_samples);

 private:
  [[nodiscard]] std::vector<float> size_features(const dataset::OclSample& sample) const;

  const dataset::OclDataset& data_;
  MgaModelConfig model_config_;
  TrainConfig train_config_;
  dataset::MinMaxScaler size_scaler_;
};

/// Shared helper: Gaussian-rank scale the per-kernel IR2Vec vectors fitted on
/// the training kernels, returning scaled rows for all kernels.
[[nodiscard]] std::vector<std::vector<float>> rank_scaled_vectors(
    const std::vector<std::vector<float>>& vectors, const std::vector<int>& train_kernels);

}  // namespace mga::core
