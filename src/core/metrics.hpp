// Evaluation metrics matching the paper's reporting conventions:
// speedup = runtime_default / runtime_predicted, aggregated by geometric
// mean, optionally normalized by the oracle (brute-force) speedup.
#pragma once

#include <vector>

#include "dataset/dataset.hpp"

namespace mga::core {

struct SpeedupSummary {
  double gmean_speedup = 1.0;     // predicted configuration vs default
  double oracle_speedup = 1.0;    // best configuration vs default
  double normalized = 1.0;        // gmean / oracle
  double accuracy = 0.0;          // exact-label accuracy
};

/// Summarize predictions over a set of samples. `predicted[i]` is the config
/// index chosen for `sample_indices[i]`.
[[nodiscard]] SpeedupSummary summarize_predictions(const dataset::OmpDataset& data,
                                                   const std::vector<int>& sample_indices,
                                                   const std::vector<int>& predicted);

/// Per-sample speedups (default / predicted) for custom aggregation.
[[nodiscard]] std::vector<double> per_sample_speedups(const dataset::OmpDataset& data,
                                                      const std::vector<int>& sample_indices,
                                                      const std::vector<int>& predicted);

/// Sample indices whose kernel id is in `kernel_ids`.
[[nodiscard]] std::vector<int> samples_of_kernels(const dataset::OmpDataset& data,
                                                  const std::vector<int>& kernel_ids);

}  // namespace mga::core
