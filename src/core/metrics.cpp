#include "core/metrics.hpp"

#include <unordered_set>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace mga::core {

std::vector<double> per_sample_speedups(const dataset::OmpDataset& data,
                                        const std::vector<int>& sample_indices,
                                        const std::vector<int>& predicted) {
  MGA_CHECK(sample_indices.size() == predicted.size());
  std::vector<double> speedups;
  speedups.reserve(sample_indices.size());
  for (std::size_t i = 0; i < sample_indices.size(); ++i) {
    const auto& sample = data.samples[static_cast<std::size_t>(sample_indices[i])];
    const double chosen = sample.seconds[static_cast<std::size_t>(predicted[i])];
    speedups.push_back(sample.default_seconds / chosen);
  }
  return speedups;
}

SpeedupSummary summarize_predictions(const dataset::OmpDataset& data,
                                     const std::vector<int>& sample_indices,
                                     const std::vector<int>& predicted) {
  MGA_CHECK(!sample_indices.empty() && sample_indices.size() == predicted.size());
  SpeedupSummary summary;
  const std::vector<double> achieved = per_sample_speedups(data, sample_indices, predicted);

  std::vector<double> oracle;
  oracle.reserve(sample_indices.size());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < sample_indices.size(); ++i) {
    const auto& sample = data.samples[static_cast<std::size_t>(sample_indices[i])];
    oracle.push_back(sample.default_seconds /
                     sample.seconds[static_cast<std::size_t>(sample.label)]);
    if (predicted[i] == sample.label) ++correct;
  }

  summary.gmean_speedup = util::geometric_mean(achieved);
  summary.oracle_speedup = util::geometric_mean(oracle);
  summary.normalized = summary.gmean_speedup / summary.oracle_speedup;
  summary.accuracy = static_cast<double>(correct) / static_cast<double>(predicted.size());
  return summary;
}

std::vector<int> samples_of_kernels(const dataset::OmpDataset& data,
                                    const std::vector<int>& kernel_ids) {
  const std::unordered_set<int> wanted(kernel_ids.begin(), kernel_ids.end());
  std::vector<int> result;
  for (std::size_t i = 0; i < data.samples.size(); ++i)
    if (wanted.contains(data.samples[i].kernel_id)) result.push_back(static_cast<int>(i));
  return result;
}

}  // namespace mga::core
